//! Replayable bound certificates.
//!
//! A [`Certificate`] records a concrete derivation chain Π₀, Π₁, …, Π_m —
//! the problems themselves plus one edge per consecutive pair — and a
//! claimed verdict. [`Certificate::verify`] replays the chain using *only*
//! `roundelim-core` primitives ([`full_step`], witness checking via
//! [`check_relaxation`]/[`check_isomorphism`], and the 0-round deciders),
//! so a bug in the search cannot produce a wrong bound: whatever the search
//! emits either replays green or is rejected.
//!
//! ## Soundness (what a green replay means)
//!
//! Let `s` be the number of [`Edge::Step`] edges in the chain. On
//! t-independent graph classes of sufficient girth (the paper's Theorem 1/2
//! regime):
//!
//! * **Lower bounds.** A step edge drops the complexity by exactly one; a
//!   relax edge cannot increase it. With every non-final chain problem
//!   verified non-0-round-solvable, `complexity(Π₀) ≥ s` — and if the chain
//!   *ends* in a problem isomorphic to an earlier one with at least one
//!   step edge in between (all cycle problems non-0-round), no iteration
//!   count ever reaches a 0-round problem: the complexity exceeds every `t`
//!   admitting a suitable class ([`CertVerdict::Unbounded`], the §4.4
//!   fixed-point argument).
//! * **Upper bounds.** Read backwards: the final problem is 0-round
//!   solvable, a step edge costs one round to undo (Theorem 2's converse
//!   direction on the same regime), and a harden edge is free — so
//!   `complexity(Π₀) ≤ s` ([`CertVerdict::UpperBound`], the §4.5
//!   derivation shape).
//!
//! Over-claims are rejected: a lower-bound verdict may not claim more than
//! the replayed chain certifies, an upper-bound verdict may not claim less.

use crate::json::Json;
use roundelim_core::error::{Error, Result};
use roundelim_core::iso::check_isomorphism;
use roundelim_core::label::Label;
use roundelim_core::problem::Problem;
use roundelim_core::relax::check_relaxation;
use roundelim_core::sequence::ZeroRoundModel;
use roundelim_core::speedup::full_step;
use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};

/// Which kind of bound a certificate derives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Lower bound (speedup + relaxations, §2.1 / §4.4 / §4.6).
    Lower,
    /// Upper bound (speedup + hardenings, §4.5).
    Upper,
}

/// One edge of a derivation chain, connecting `problems[i]` to
/// `problems[i+1]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edge {
    /// `problems[i+1]` is exactly `full_step(problems[i])` (one round of
    /// speedup; name metadata is ignored in the comparison).
    Step,
    /// `problems[i+1]` is a relaxation of `problems[i]`, witnessed by
    /// `map` (one `problems[i+1]`-label per `problems[i]`-label).
    Relax {
        /// The relaxation witness.
        map: Vec<Label>,
    },
    /// `problems[i+1]` is a hardening of `problems[i]`: `problems[i]` is a
    /// relaxation of `problems[i+1]`, witnessed by `map` (one
    /// `problems[i]`-label per `problems[i+1]`-label).
    Harden {
        /// The hardening witness.
        map: Vec<Label>,
    },
}

/// The claimed verdict of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertVerdict {
    /// The final problem is isomorphic to `problems[cycle_start]` (witness
    /// `iso_map`, final-problem label → earlier-problem label), and the
    /// cycle contains at least one step edge: the speedup iteration never
    /// reaches a 0-round problem.
    Unbounded {
        /// Index of the revisited problem.
        cycle_start: usize,
        /// Isomorphism witness from the final problem onto
        /// `problems[cycle_start]`.
        iso_map: Vec<Label>,
    },
    /// Complexity of `problems[0]` is at least `rounds` (and exactly
    /// `rounds` on the Theorem-1/2 regime when the chain ends 0-round).
    LowerBound {
        /// The claimed bound.
        rounds: usize,
    },
    /// Complexity of `problems[0]` is at most `rounds` on the regime.
    UpperBound {
        /// The claimed bound.
        rounds: usize,
    },
}

/// A replayable derivation chain with a claimed verdict. See module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Lower- or upper-bound derivation.
    pub direction: Direction,
    /// The 0-round model all solvability checks use.
    pub model: ZeroRoundModel,
    /// The derivation chain, starting with the input problem.
    pub problems: Vec<Problem>,
    /// `edges[i]` connects `problems[i]` to `problems[i+1]`.
    pub edges: Vec<Edge>,
    /// Whether the producing search stopped early (time/expansion budget,
    /// interruption, or depth exhaustion) before settling the problem. The
    /// verdict is still fully verified — an incomplete lower bound is a
    /// true bound that might improve with a larger budget. Only meaningful
    /// on [`CertVerdict::LowerBound`]: unbounded and upper-bound verdicts
    /// are conclusive by construction, so the marker is rejected there.
    pub incomplete: bool,
    /// The claimed verdict.
    pub verdict: CertVerdict,
}

/// Why a certificate failed to replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertError {
    /// Human-readable description of the first failed check.
    pub reason: String,
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "certificate rejected: {}", self.reason)
    }
}

impl std::error::Error for CertError {}

fn fail<T>(reason: impl Into<String>) -> std::result::Result<T, CertError> {
    Err(CertError { reason: reason.into() })
}

/// Structural equality modulo the provenance name.
fn same_problem(a: &Problem, b: &Problem) -> bool {
    a.alphabet() == b.alphabet() && a.node() == b.node() && a.edge() == b.edge()
}

impl Certificate {
    /// Number of speedup steps in the chain.
    pub fn steps(&self) -> usize {
        self.edges.iter().filter(|e| matches!(e, Edge::Step)).count()
    }

    /// Independently replays the chain and checks the verdict; see the
    /// module docs for exactly what a green replay certifies.
    ///
    /// # Errors
    ///
    /// Returns the first failed check. Engine errors during replay (e.g.
    /// alphabet overflow re-running a step) also reject the certificate.
    pub fn verify(&self) -> std::result::Result<(), CertError> {
        self.verify_impl(false)
    }

    /// Like [`Certificate::verify`] but skips the per-edge [`full_step`]
    /// replay, the dominant cost on long chains. Still checked: chain
    /// shape, every relax/harden/isomorphism witness, 0-round solvability
    /// of every chain problem, and the verdict arithmetic. A `--fast` green
    /// light therefore trusts the recorded step results but nothing else;
    /// use the full [`Certificate::verify`] for an end-to-end replay.
    ///
    /// # Errors
    ///
    /// Returns the first failed check, as in [`Certificate::verify`].
    pub fn verify_fast(&self) -> std::result::Result<(), CertError> {
        self.verify_impl(true)
    }

    fn verify_impl(&self, fast: bool) -> std::result::Result<(), CertError> {
        if self.problems.len() != self.edges.len() + 1 {
            return fail(format!(
                "chain shape: {} problems need {} edges, found {}",
                self.problems.len(),
                self.problems.len().saturating_sub(1),
                self.edges.len()
            ));
        }
        let m = self.edges.len();
        if self.incomplete && !matches!(self.verdict, CertVerdict::LowerBound { .. }) {
            return fail("incomplete marker on a conclusive (unbounded/upper-bound) verdict");
        }
        // 1. Replay every edge.
        for (i, edge) in self.edges.iter().enumerate() {
            let (cur, next) = (&self.problems[i], &self.problems[i + 1]);
            match edge {
                Edge::Step => {
                    if fast {
                        continue;
                    }
                    let derived = match full_step(cur) {
                        Ok(s) => s.problem().clone(),
                        Err(e) => return fail(format!("edge {i}: step replay failed: {e}")),
                    };
                    if !same_problem(&derived, next) {
                        return fail(format!(
                            "edge {i}: step result does not match recorded problem"
                        ));
                    }
                }
                Edge::Relax { map } => {
                    if self.direction != Direction::Lower {
                        return fail(format!("edge {i}: relax edge in an upper-bound chain"));
                    }
                    if !check_relaxation(cur, next, map) {
                        return fail(format!("edge {i}: relaxation witness check failed"));
                    }
                }
                Edge::Harden { map } => {
                    if self.direction != Direction::Upper {
                        return fail(format!("edge {i}: harden edge in a lower-bound chain"));
                    }
                    if !check_relaxation(next, cur, map) {
                        return fail(format!("edge {i}: hardening witness check failed"));
                    }
                }
            }
        }
        // 2. Recompute 0-round solvability along the chain.
        let zr: Vec<bool> = self
            .problems
            .iter()
            .map(|p| match self.model {
                ZeroRoundModel::PlainPn => zero_round_pn(p).is_some(),
                ZeroRoundModel::Oriented => zero_round_oriented(p).is_some(),
            })
            .collect();
        let steps = self.steps();
        // 3. Check the verdict against the replayed chain.
        match &self.verdict {
            CertVerdict::LowerBound { rounds } => {
                if self.direction != Direction::Lower {
                    return fail("lower-bound verdict on an upper-bound chain");
                }
                if let Some(i) = zr[..m].iter().position(|&z| z) {
                    return fail(format!(
                        "problem {i} is 0-round solvable but the chain continues past it"
                    ));
                }
                if *rounds > steps {
                    return fail(format!(
                        "claimed lower bound {rounds} exceeds the {steps} certified steps"
                    ));
                }
            }
            CertVerdict::Unbounded { cycle_start, iso_map } => {
                if self.direction != Direction::Lower {
                    return fail("unbounded verdict on an upper-bound chain");
                }
                if *cycle_start >= m {
                    return fail(format!("cycle start {cycle_start} is not before the chain end"));
                }
                if let Some(i) = zr.iter().position(|&z| z) {
                    return fail(format!(
                        "problem {i} is 0-round solvable; a cycle through it proves nothing"
                    ));
                }
                if !check_isomorphism(&self.problems[m], &self.problems[*cycle_start], iso_map) {
                    return fail("cycle isomorphism witness check failed");
                }
                let cycle_steps =
                    self.edges[*cycle_start..].iter().filter(|e| matches!(e, Edge::Step)).count();
                if cycle_steps == 0 {
                    return fail("cycle contains no step edge; relax-only cycles prove nothing");
                }
            }
            CertVerdict::UpperBound { rounds } => {
                if self.direction != Direction::Upper {
                    return fail("upper-bound verdict on a lower-bound chain");
                }
                if !zr[m] {
                    return fail("final problem is not 0-round solvable");
                }
                if *rounds < steps {
                    return fail(format!(
                        "claimed upper bound {rounds} is below the {steps} steps the chain uses"
                    ));
                }
            }
        }
        Ok(())
    }

    /// A one-line human summary of the verdict.
    pub fn summary(&self) -> String {
        let chain = format!("{} problems, {} steps", self.problems.len(), self.steps());
        let partial = if self.incomplete { "; search incomplete" } else { "" };
        match &self.verdict {
            CertVerdict::Unbounded { cycle_start, .. } => format!(
                "unbounded lower bound: Π_{} ≅ Π_{cycle_start} (fixed point; {chain})",
                self.edges.len()
            ),
            CertVerdict::LowerBound { rounds } => {
                format!("lower bound {rounds} rounds ({chain}{partial})")
            }
            CertVerdict::UpperBound { rounds } => format!("upper bound {rounds} rounds ({chain})"),
        }
    }

    /// Serializes the certificate as pretty-printed JSON
    /// (`roundelim-cert-v1` schema; problems in the core text format).
    pub fn to_json(&self) -> String {
        self.json_value().to_string_pretty()
    }

    /// The certificate as a [`Json`] value (for embedding in larger
    /// documents, e.g. the CLI's `--json` reports).
    pub fn json_value(&self) -> Json {
        let edges = self.edges.iter().map(edge_to_json).collect();
        let verdict = match &self.verdict {
            CertVerdict::Unbounded { cycle_start, iso_map } => Json::obj([
                ("kind", Json::Str("unbounded".into())),
                ("cycle_start", Json::Num(*cycle_start as u64)),
                ("iso_map", label_map_to_json(iso_map)),
            ]),
            CertVerdict::LowerBound { rounds } => Json::obj([
                ("kind", Json::Str("lower-bound".into())),
                ("rounds", Json::Num(*rounds as u64)),
            ]),
            CertVerdict::UpperBound { rounds } => Json::obj([
                ("kind", Json::Str("upper-bound".into())),
                ("rounds", Json::Num(*rounds as u64)),
            ]),
        };
        Json::obj([
            ("schema", Json::Str("roundelim-cert-v1".into())),
            (
                "direction",
                Json::Str(
                    match self.direction {
                        Direction::Lower => "lower-bound",
                        Direction::Upper => "upper-bound",
                    }
                    .into(),
                ),
            ),
            (
                "model",
                Json::Str(
                    match self.model {
                        ZeroRoundModel::PlainPn => "plain-pn",
                        ZeroRoundModel::Oriented => "oriented",
                    }
                    .into(),
                ),
            ),
            ("problems", Json::Arr(self.problems.iter().map(|p| Json::Str(p.to_text())).collect())),
            ("edges", Json::Arr(edges)),
            ("incomplete", Json::Bool(self.incomplete)),
            ("verdict", verdict),
        ])
    }

    /// Parses a certificate from its JSON serialization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on malformed JSON or schema violations, and
    /// problem-parsing errors for malformed embedded problems. Successful
    /// parsing does **not** imply validity — run [`Certificate::verify`].
    pub fn from_json(text: &str) -> Result<Certificate> {
        let bad = |reason: &str| Error::Parse { line: 0, reason: reason.to_owned() };
        let v = Json::parse(text).map_err(|e| Error::Parse { line: 0, reason: e })?;
        if v.get("schema").and_then(Json::as_str) != Some("roundelim-cert-v1") {
            return Err(bad("missing or unknown `schema` (want roundelim-cert-v1)"));
        }
        let direction = match v.get("direction").and_then(Json::as_str) {
            Some("lower-bound") => Direction::Lower,
            Some("upper-bound") => Direction::Upper,
            _ => return Err(bad("missing or unknown `direction`")),
        };
        let model = match v.get("model").and_then(Json::as_str) {
            Some("plain-pn") => ZeroRoundModel::PlainPn,
            Some("oriented") => ZeroRoundModel::Oriented,
            _ => return Err(bad("missing or unknown `model`")),
        };
        let problems = v
            .get("problems")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `problems` array"))?
            .iter()
            .map(|p| Problem::parse(p.as_str().ok_or_else(|| bad("problem must be a string"))?))
            .collect::<Result<Vec<_>>>()?;
        let edges = v
            .get("edges")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `edges` array"))?
            .iter()
            .map(edge_from_json)
            .collect::<Result<Vec<_>>>()?;
        let incomplete = match v.get("incomplete") {
            None => false,
            Some(j) => j.as_bool().ok_or_else(|| bad("`incomplete` must be a boolean"))?,
        };
        let vd = v.get("verdict").ok_or_else(|| bad("missing `verdict`"))?;
        let num = |key: &str| -> Result<usize> {
            vd.get(key)
                .and_then(Json::as_u64)
                .map(|n| n as usize)
                .ok_or_else(|| bad(&format!("verdict needs numeric `{key}`")))
        };
        let verdict = match vd.get("kind").and_then(Json::as_str) {
            Some("unbounded") => CertVerdict::Unbounded {
                cycle_start: num("cycle_start")?,
                iso_map: label_map_from_json(
                    vd.get("iso_map").ok_or_else(|| bad("missing `iso_map`"))?,
                )?,
            },
            Some("lower-bound") => CertVerdict::LowerBound { rounds: num("rounds")? },
            Some("upper-bound") => CertVerdict::UpperBound { rounds: num("rounds")? },
            _ => return Err(bad("verdict with missing or unknown `kind`")),
        };
        Ok(Certificate { direction, model, problems, edges, incomplete, verdict })
    }
}

/// A label-map witness as a JSON array of label indices.
pub(crate) fn label_map_to_json(map: &[Label]) -> Json {
    Json::Arr(map.iter().map(|l| Json::Num(l.index() as u64)).collect())
}

/// Parses a label-map witness, guarding the label type's index range: a
/// cast that wrapped would alias an out-of-range witness index onto a valid
/// label and could let a corrupt file verify.
pub(crate) fn label_map_from_json(j: &Json) -> Result<Vec<Label>> {
    let bad = |reason: &str| Error::Parse { line: 0, reason: reason.to_owned() };
    j.as_arr()
        .ok_or_else(|| bad("`map` must be an array"))?
        .iter()
        .map(|n| {
            n.as_u64().filter(|&x| x <= u64::from(u16::MAX)).map(|x| Label::from_index(x as usize))
        })
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| bad("`map` entries must be label indices"))
}

/// A chain edge as a JSON object (shared between certificates and
/// checkpoints, which persist the search graph's parent edges).
pub(crate) fn edge_to_json(e: &Edge) -> Json {
    match e {
        Edge::Step => Json::obj([("kind", Json::Str("step".into()))]),
        Edge::Relax { map } => {
            Json::obj([("kind", Json::Str("relax".into())), ("map", label_map_to_json(map))])
        }
        Edge::Harden { map } => {
            Json::obj([("kind", Json::Str("harden".into())), ("map", label_map_to_json(map))])
        }
    }
}

/// Parses a chain edge (inverse of [`edge_to_json`]).
pub(crate) fn edge_from_json(e: &Json) -> Result<Edge> {
    let bad = |reason: &str| Error::Parse { line: 0, reason: reason.to_owned() };
    match e.get("kind").and_then(Json::as_str) {
        Some("step") => Ok(Edge::Step),
        Some("relax") => Ok(Edge::Relax {
            map: label_map_from_json(e.get("map").ok_or_else(|| bad("relax edge needs `map`"))?)?,
        }),
        Some("harden") => Ok(Edge::Harden {
            map: label_map_from_json(e.get("map").ok_or_else(|| bad("harden edge needs `map`"))?)?,
        }),
        _ => Err(bad("edge with missing or unknown `kind`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Problem {
        Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap()
    }

    /// A hand-built §4.4-style certificate: sc steps to itself (up to iso)
    /// after some number of steps; build the concrete 2-chain by stepping.
    fn fixed_point_cert() -> Certificate {
        let p0 = sc();
        let mut problems = vec![p0.clone()];
        let mut edges = Vec::new();
        loop {
            let next = full_step(problems.last().unwrap()).unwrap().problem().clone();
            edges.push(Edge::Step);
            if let Some(map) = roundelim_core::iso::isomorphism(&next, &problems[0]) {
                problems.push(next);
                return Certificate {
                    direction: Direction::Lower,
                    model: ZeroRoundModel::Oriented,
                    problems,
                    edges,
                    incomplete: false,
                    verdict: CertVerdict::Unbounded { cycle_start: 0, iso_map: map },
                };
            }
            problems.push(next);
            assert!(problems.len() < 6, "sc must cycle quickly");
        }
    }

    #[test]
    fn fixed_point_certificate_verifies() {
        fixed_point_cert().verify().unwrap();
    }

    #[test]
    fn fast_verify_accepts_what_full_verify_accepts() {
        let cert = fixed_point_cert();
        cert.verify().unwrap();
        cert.verify_fast().unwrap();
    }

    #[test]
    fn fast_verify_still_checks_witnesses_and_arithmetic() {
        // Corrupt iso witness: both modes reject.
        let mut cert = fixed_point_cert();
        if let CertVerdict::Unbounded { iso_map, .. } = &mut cert.verdict {
            for l in iso_map.iter_mut() {
                *l = Label::from_index(0);
            }
        }
        assert!(cert.verify_fast().is_err());
        // Over-claimed bound: both modes reject.
        let p = sc();
        let next = full_step(&p).unwrap().problem().clone();
        let over = Certificate {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            problems: vec![p, next],
            edges: vec![Edge::Step],
            incomplete: false,
            verdict: CertVerdict::LowerBound { rounds: 5 },
        };
        assert!(over.verify_fast().is_err());
    }

    #[test]
    fn fast_verify_trusts_recorded_step_results() {
        // Replace a mid-chain problem with a copy of its predecessor: the
        // full replay notices the step result no longer matches; the fast
        // path — which skips exactly that replay — does not. This pins the
        // documented trust boundary of `--fast`.
        let mut cert = fixed_point_cert();
        cert.verdict = CertVerdict::LowerBound { rounds: 1 };
        assert!(cert.problems.len() >= 2);
        cert.problems[1] = cert.problems[0].clone();
        assert!(cert.verify().is_err(), "full verify must catch the forged step");
        cert.verify_fast().unwrap_or_else(|e| {
            panic!("fast verify checks witnesses only, so this must pass: {e}")
        });
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let cert = fixed_point_cert();
        let text = cert.to_json();
        let back = Certificate::from_json(&text).unwrap();
        assert_eq!(cert, back);
        back.verify().unwrap();
    }

    #[test]
    fn corrupted_iso_map_is_rejected() {
        let mut cert = fixed_point_cert();
        if let CertVerdict::Unbounded { iso_map, .. } = &mut cert.verdict {
            // A constant map is not a bijection.
            for l in iso_map.iter_mut() {
                *l = Label::from_index(0);
            }
        }
        assert!(cert.verify().is_err());
    }

    #[test]
    fn skipped_step_is_rejected() {
        let mut cert = fixed_point_cert();
        // Duplicate the base problem without an honest edge between copies:
        // claim the chain skips straight from Π₀ to Π₀ via a "step".
        cert.problems.insert(1, cert.problems[0].clone());
        cert.edges.insert(0, Edge::Step);
        // Only fails if Π₀ is not its own full step — which §4.4 guarantees
        // (sc steps to an isomorphic but differently-labeled problem, and
        // same_problem compares structure on the nose only after renaming).
        let r = cert.verify();
        assert!(r.is_err(), "chain with a fake step edge must be rejected: {r:?}");
    }

    #[test]
    fn overclaimed_lower_bound_is_rejected() {
        let p = sc();
        let next = full_step(&p).unwrap().problem().clone();
        let cert = Certificate {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            problems: vec![p, next],
            edges: vec![Edge::Step],
            incomplete: false,
            verdict: CertVerdict::LowerBound { rounds: 5 },
        };
        let err = cert.verify().unwrap_err();
        assert!(err.reason.contains("exceeds"), "{err}");
        let ok = Certificate { verdict: CertVerdict::LowerBound { rounds: 1 }, ..cert };
        ok.verify().unwrap();
    }

    #[test]
    fn incomplete_lower_bound_verifies_and_round_trips() {
        let p = sc();
        let next = full_step(&p).unwrap().problem().clone();
        let cert = Certificate {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            problems: vec![p, next],
            edges: vec![Edge::Step],
            incomplete: true,
            verdict: CertVerdict::LowerBound { rounds: 1 },
        };
        cert.verify().unwrap();
        assert!(cert.summary().contains("incomplete"), "{}", cert.summary());
        let back = Certificate::from_json(&cert.to_json()).unwrap();
        assert_eq!(cert, back);
        assert!(back.incomplete);
        // Over-claiming is rejected regardless of the incomplete marker: a
        // partial verdict is still held to the replayed chain.
        let over = Certificate { verdict: CertVerdict::LowerBound { rounds: 2 }, ..cert };
        assert!(over.verify().is_err());
    }

    #[test]
    fn incomplete_marker_on_conclusive_verdicts_is_rejected() {
        let mut cert = fixed_point_cert();
        cert.verify().unwrap();
        cert.incomplete = true;
        let err = cert.verify().unwrap_err();
        assert!(err.reason.contains("incomplete"), "{err}");
    }

    #[test]
    fn certificates_without_incomplete_field_still_parse() {
        // Pre-marker certificate files omit the field; they parse as
        // complete (the only thing such files ever recorded).
        let cert = fixed_point_cert();
        let mut json = cert.to_json();
        json = json.replace("  \"incomplete\": false,\n", "");
        assert_ne!(json, cert.to_json());
        let back = Certificate::from_json(&json).unwrap();
        assert_eq!(back, cert);
    }

    #[test]
    fn relax_only_cycle_is_rejected() {
        let p = sc();
        let identity: Vec<Label> = (0..2).map(Label::from_index).collect();
        let cert = Certificate {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            problems: vec![p.clone(), p.clone()],
            edges: vec![Edge::Relax { map: identity.clone() }],
            incomplete: false,
            verdict: CertVerdict::Unbounded { cycle_start: 0, iso_map: identity },
        };
        let err = cert.verify().unwrap_err();
        assert!(err.reason.contains("no step edge"), "{err}");
    }

    #[test]
    fn direction_mismatches_are_rejected() {
        let mut cert = fixed_point_cert();
        cert.direction = Direction::Upper;
        assert!(cert.verify().is_err());
    }

    #[test]
    fn upper_bound_chain_verifies_and_underclaim_rejected() {
        // trivial problem: 0 rounds, chain of length 0.
        let t = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let cert = Certificate {
            direction: Direction::Upper,
            model: ZeroRoundModel::PlainPn,
            problems: vec![t],
            edges: vec![],
            incomplete: false,
            verdict: CertVerdict::UpperBound { rounds: 0 },
        };
        cert.verify().unwrap();
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Certificate::from_json("{}").is_err());
        assert!(Certificate::from_json("not json").is_err());
        let mut cert_json = fixed_point_cert().to_json();
        cert_json = cert_json.replace("roundelim-cert-v1", "bogus-v9");
        assert!(Certificate::from_json(&cert_json).is_err());
    }

    #[test]
    fn out_of_range_map_indices_are_rejected_at_parse() {
        // 65536 wraps to label 0 under a bare u16 cast; parsing must refuse
        // it rather than alias it onto a valid label.
        let p = sc();
        let cert = Certificate {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            problems: vec![p.clone(), p],
            edges: vec![Edge::Relax { map: vec![Label::from_index(0), Label::from_index(1)] }],
            incomplete: false,
            verdict: CertVerdict::LowerBound { rounds: 0 },
        };
        cert.verify().unwrap();
        let tampered = cert.to_json().replace("\"map\": [", "\"map\": [65536, ");
        assert_ne!(tampered, cert.to_json());
        assert!(Certificate::from_json(&tampered).is_err());
    }
}
