//! Candidate search moves: relaxations (for lower bounds) and hardenings
//! (for upper bounds), generated from the constraint structure.
//!
//! Relaxations make a problem easier — any algorithm for the current
//! problem solves the relaxed one after a 0-round label translation — so a
//! lower bound proved for the relaxed problem transfers to the current one.
//! The generator produces:
//!
//! * **label merges** — quotient the problem by identifying two labels
//!   (§2.1's "simplify the problem description" move, the one the paper
//!   applies by hand between speedup steps);
//! * **label-set coarsenings** — one move merging every group of labels
//!   that behave identically on the edge side, the structural batch
//!   version of the same idea.
//!
//! Hardenings go the other way — the new problem is at least as hard, so
//! an upper bound for it transfers back (§4.5's Π₁ → Π₁* move). Generated:
//! dropping a label (with every configuration mentioning it) and dropping
//! a single node configuration.
//!
//! Every move carries its witness label map; the search emits these maps
//! into certificates, and [`crate::certificate::Certificate::verify`]
//! replays them with `roundelim_core::relax::check_relaxation`.

use roundelim_core::iso::refined_label_hashes;
use roundelim_core::label::{Alphabet, Label};
use roundelim_core::labelset::LabelSet;
use roundelim_core::problem::Problem;

/// A relaxation candidate: `result` is easier than the source problem, as
/// witnessed by `map` (source label → result label).
#[derive(Debug, Clone)]
pub struct RelaxMove {
    /// Human-readable description, e.g. `merge A←B`.
    pub what: String,
    /// Witness label map (indexed by source label).
    pub map: Vec<Label>,
    /// The relaxed problem.
    pub result: Problem,
}

/// A hardening candidate: `result` is at least as hard as the source
/// problem, as witnessed by `map` (result label → source label).
#[derive(Debug, Clone)]
pub struct HardenMove {
    /// Human-readable description, e.g. `drop label X`.
    pub what: String,
    /// Witness label map (indexed by result label).
    pub map: Vec<Label>,
    /// The hardened problem.
    pub result: Problem,
}

/// Builds the quotient of `p` under a partition of its labels.
///
/// `rep[i]` names the representative (an old label index) of old label `i`;
/// representatives must map to themselves. Returns the quotient problem and
/// the witness map, or `None` if the construction fails (it cannot for a
/// well-formed partition, but the guard keeps candidate generation total).
fn quotient(p: &Problem, rep: &[usize], what: String) -> Option<RelaxMove> {
    debug_assert!(rep.iter().all(|&r| rep[r] == r), "representatives must be fixed points");
    // New alphabet: representatives in old-index order keep their names.
    let mut new_index = vec![usize::MAX; p.alphabet().len()];
    let mut names: Vec<&str> = Vec::new();
    for i in 0..p.alphabet().len() {
        if rep[i] == i {
            new_index[i] = names.len();
            names.push(p.alphabet().name(Label::from_index(i)));
        }
    }
    let alphabet = Alphabet::from_names(names).ok()?;
    let map: Vec<Label> =
        (0..p.alphabet().len()).map(|i| Label::from_index(new_index[rep[i]])).collect();
    let node = p.node().map_labels(|l| map[l.index()]);
    let edge = p.edge().map_labels(|l| map[l.index()]);
    // The quotient maps labels into the fresh alphabet by construction and
    // preserves the edge arity: skip per-candidate validation (this runs
    // for every relax candidate of every expanded node).
    let result = Problem::new_unchecked(format!("{}″", p.name()), alphabet, node, edge);
    Some(RelaxMove { what, map, result })
}

/// All pairwise label-merge relaxations of `p` (one per unordered label
/// pair; merging `{a, b}` either way yields the same quotient up to
/// renaming, so the smaller index is kept as representative).
pub fn merge_moves(p: &Problem) -> Vec<RelaxMove> {
    pairwise_merges(p, &std::collections::HashSet::new())
}

/// [`merge_moves`] minus the unordered pairs in `skip`.
fn pairwise_merges(
    p: &Problem,
    skip: &std::collections::HashSet<(usize, usize)>,
) -> Vec<RelaxMove> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if skip.contains(&(a, b)) {
                continue;
            }
            let mut rep: Vec<usize> = (0..n).collect();
            rep[b] = a;
            let what = format!(
                "merge {}←{}",
                p.alphabet().name(Label::from_index(a)),
                p.alphabet().name(Label::from_index(b))
            );
            if let Some(mv) = quotient(p, &rep, what) {
                out.push(mv);
            }
        }
    }
    out
}

/// Dominated-label merges: merge `a` into `b` whenever *every*
/// configuration containing `a` stays a configuration after replacing `a`
/// by `b` (on both the node and the edge side). The quotient then adds no
/// new configurations — it is exactly `p` with label `a` dropped — so the
/// relaxation is "free" in the round-eliminator sense: it shrinks the
/// description without weakening the constraints anywhere else. These are
/// the merges that collapse a derived problem back onto the §4.4/§4.5
/// fixed-point shapes, so they are generated before the generic pairwise
/// merges.
pub fn dominated_merge_moves(p: &Problem) -> Vec<RelaxMove> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for (a, b) in dominated_pairs(p) {
        let mut rep: Vec<usize> = (0..n).collect();
        rep[a] = b;
        // `quotient` wants representatives to be fixed points; b is.
        let what = format!(
            "absorb {}→{}",
            p.alphabet().name(Label::from_index(a)),
            p.alphabet().name(Label::from_index(b))
        );
        if let Some(mv) = quotient(p, &rep, what) {
            out.push(mv);
        }
    }
    out
}

/// Whether replacing `a` by `b` keeps every configuration of `c` inside
/// `c`: an allocation-free trie probe per configuration containing `a`.
fn replacement_stays_inside(
    c: &roundelim_core::constraint::Constraint,
    a: Label,
    b: Label,
    buf: &mut Vec<Label>,
) -> bool {
    let trie = c.trie();
    c.iter().filter(|cfg| cfg.contains(a)).all(|cfg| {
        buf.clear();
        buf.extend(cfg.labels().iter().map(|&l| if l == a { b } else { l }));
        buf.sort_unstable();
        trie.contains_sorted(buf)
    })
}

/// Constant-time necessary-and-sufficient edge-side dominance test over
/// precomputed compatibility rows: replacing `a` by `b` keeps every edge
/// configuration iff `row(a)∖{a} ⊆ row(b)` and (`{a,a} ∈ g` implies
/// `{b,b} ∈ g`). Non-arity-2 edge constraints fall back to the
/// configuration scan.
fn edge_dominates(rows: &[LabelSet], a: usize, b: usize) -> bool {
    let (la, lb) = (Label::from_index(a), Label::from_index(b));
    let mut off_diag = rows[a];
    off_diag.remove(la);
    off_diag.is_subset(&rows[b]) && (!rows[a].contains(la) || rows[b].contains(lb))
}

/// Walks the ordered pairs `(a, b)` with `b` dominating `a` in
/// lexicographic order, calling `visit` per pair; stops early when `visit`
/// returns `true`. The edge side is decided by the O(1) row test
/// ([`edge_dominates`]); the node-side configuration scan only runs for
/// pairs that pass it. Single source of truth for the dominance condition
/// ([`dominated_pairs`] and [`simplify_move`]'s early-exit scan must never
/// disagree).
fn scan_dominated_pairs<F: FnMut(usize, usize) -> bool>(p: &Problem, mut visit: F) {
    let n = p.alphabet().len();
    let mut buf: Vec<Label> = Vec::new();
    let rows = (p.edge().arity() == 2).then(|| p.edge_rows());
    for a in 0..n {
        let la = Label::from_index(a);
        for b in 0..n {
            if a == b {
                continue;
            }
            let lb = Label::from_index(b);
            let edge_ok = match &rows {
                Some(rows) => edge_dominates(rows, a, b),
                None => replacement_stays_inside(p.edge(), la, lb, &mut buf),
            };
            if edge_ok && replacement_stays_inside(p.node(), la, lb, &mut buf) && visit(a, b) {
                return;
            }
        }
    }
}

/// All ordered pairs `(a, b)` where `b` dominates `a` (see
/// [`dominated_merge_moves`]), in lexicographic order.
fn dominated_pairs(p: &Problem) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    scan_dominated_pairs(p, |a, b| {
        out.push((a, b));
        false
    });
    out
}

/// The full simplification of `p`: absorb dominated labels repeatedly (the
/// lexicographically first applicable absorption each round) until none
/// remain, composing the witness maps into one relaxation move. This is
/// the round-eliminator "simplify" pass as a single search edge; `None`
/// when no label is dominated.
pub fn simplify_move(p: &Problem) -> Option<RelaxMove> {
    let mut current = p.clone();
    let mut map: Vec<Label> = (0..p.alphabet().len()).map(Label::from_index).collect();
    let mut absorbed = 0usize;
    while let Some((a, b)) = first_dominated_pair(&current) {
        // Only the lexicographically first absorption is applied, so the
        // pair scan stops at the first hit instead of materializing every
        // dominated-merge quotient.
        let n = current.alphabet().len();
        let mut rep: Vec<usize> = (0..n).collect();
        rep[a] = b;
        let what = String::new(); // composed move carries its own description
        let Some(mv) = quotient(&current, &rep, what) else { break };
        for slot in map.iter_mut() {
            *slot = mv.map[slot.index()];
        }
        current = mv.result;
        absorbed += 1;
    }
    if absorbed == 0 {
        return None;
    }
    Some(RelaxMove {
        what: format!("simplify (absorb {absorbed} dominated labels)"),
        map,
        result: current,
    })
}

/// The lexicographically first ordered pair `(a, b)` with `b` dominating
/// `a`, if any (early-exit [`scan_dominated_pairs`] for
/// [`simplify_move`]'s absorb-one-at-a-time loop).
fn first_dominated_pair(p: &Problem) -> Option<(usize, usize)> {
    let mut hit = None;
    scan_dominated_pairs(p, |a, b| {
        hit = Some((a, b));
        true
    });
    hit
}

/// The structural coarsening of `p`: merge every group of labels with an
/// identical edge-side compatibility row (labels the edge constraint cannot
/// tell apart). Returns `None` when the grouping is trivial (all groups are
/// singletons) — then the move would be the identity.
pub fn coarsen_move(p: &Problem) -> Option<RelaxMove> {
    let n = p.alphabet().len();
    let rows = p.edge().compatibility_matrix(n).ok()?;
    let mut rep: Vec<usize> = (0..n).collect();
    let mut merged = false;
    for i in 0..n {
        for j in 0..i {
            if rows[i] == rows[j] {
                rep[i] = rep[j];
                merged = true;
                break;
            }
        }
    }
    if !merged {
        return None;
    }
    quotient(p, &rep, "coarsen edge-equal labels".to_owned())
}

/// Labels grouped into *verified interchangeability classes*: `rep[l]` is
/// the smallest label whose transposition with `l` (possibly through a
/// chain of class members) is an automorphism of both constraints.
///
/// Candidate pairs are pre-filtered by equal
/// [`refined_label_hashes`] — a transposition automorphism forces equal
/// constraint-row invariants — so the exact swap check (map every
/// configuration through the transposition and test membership) only runs
/// on the few genuinely symmetric-looking pairs.
pub fn twin_classes(p: &Problem) -> Vec<usize> {
    let n = p.alphabet().len();
    let hashes = refined_label_hashes(p);
    let mut rep: Vec<usize> = (0..n).collect();
    for i in 0..n {
        for j in 0..i {
            if rep[j] == j && hashes[i] == hashes[j] && swap_is_automorphism(p, i, j) {
                rep[i] = j;
                break;
            }
        }
    }
    rep
}

/// Whether exchanging labels `a` and `b` maps both constraints onto
/// themselves.
fn swap_is_automorphism(p: &Problem, a: usize, b: usize) -> bool {
    let (la, lb) = (Label::from_index(a), Label::from_index(b));
    let swap = |l: Label| {
        if l == la {
            lb
        } else if l == lb {
            la
        } else {
            l
        }
    };
    let invariant = |c: &roundelim_core::constraint::Constraint| {
        c.iter()
            .filter(|cfg| cfg.contains(la) || cfg.contains(lb))
            .all(|cfg| c.contains(&cfg.map(swap)))
    };
    invariant(p.node()) && invariant(p.edge())
}

/// Whether the pair `(a, b)` is its orbit's lexicographic representative
/// under the interchangeability classes: merging (or absorbing along) any
/// other pair of the orbit yields an isomorphic quotient, so only the
/// representative is worth materializing. Works for unordered pairs
/// (callers pass `a < b`) and ordered absorption pairs alike — the orbit
/// of an ordered same-class pair contains both orders, so its
/// representative is still the two smallest members ascending.
/// `members[c]` lists class `c`'s labels ascending.
fn pair_is_orbit_rep(a: usize, b: usize, rep: &[usize], members: &[Vec<usize>]) -> bool {
    let (ca, cb) = (rep[a], rep[b]);
    if ca == cb {
        // Both in one class: the representative is the two smallest members.
        a == members[ca][0] && b == members[ca][1]
    } else {
        a == members[ca][0] && b == members[cb][0]
    }
}

/// Per-class ascending member lists for a `rep` vector.
fn class_members(rep: &[usize]) -> Vec<Vec<usize>> {
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); rep.len()];
    for (l, &r) in rep.iter().enumerate() {
        members[r].push(l);
    }
    members
}

/// All relaxation candidates of `p`, in deterministic order: the composite
/// simplification first, then single dominated merges (free shrinkage),
/// then the structural coarsening, then the generic pairwise merges.
/// Generic merges of pairs already covered by a dominated merge are
/// skipped — identifying `{a, b}` yields the same quotient up to renaming
/// either way, and every duplicate candidate would cost a full cache key
/// downstream.
pub fn relax_moves(p: &Problem) -> Vec<RelaxMove> {
    relax_moves_impl(p, false, false)
}

/// [`relax_moves`] with sibling-orbit pruning: merge pairs that another
/// already-emitted pair maps onto under a verified constraint-row
/// automorphism ([`twin_classes`]) are skipped before their quotient is
/// even built. Every pruned candidate is isomorphic to an emitted earlier
/// sibling, so the searched class set — and with it every verdict and
/// certificate — is identical to the unpruned generation; only the
/// duplicated quotient/canonicalization work disappears.
///
/// With `subset_rows_only`, generic pairwise merges are additionally
/// restricted to label pairs whose edge-compatibility rows are
/// ⊆-comparable. Merging row-comparable labels is how derived problems
/// collapse back onto their fixed-point shapes (the weaker label's row is
/// absorbed without opening new edge configurations beyond the union);
/// incomparable-row merges on big alphabets mostly mint throwaway classes
/// whose canonicalization dominated the search's wall-clock. The search
/// enables this only for *oversized* problems (above its `max_labels`
/// step bound, where pairwise candidates grow quadratically), so searches
/// whose problems stay inside the step bound explore the identical class
/// set.
pub fn relax_moves_pruned(p: &Problem, subset_rows_only: bool) -> Vec<RelaxMove> {
    relax_moves_impl(p, true, subset_rows_only)
}

fn relax_moves_impl(p: &Problem, prune: bool, subset_rows_only: bool) -> Vec<RelaxMove> {
    let mut out = Vec::new();
    if let Some(mv) = simplify_move(p) {
        out.push(mv);
    }
    let orbit = if prune {
        let rep = twin_classes(p);
        let members = class_members(&rep);
        Some((rep, members))
    } else {
        None
    };
    let n = p.alphabet().len();
    let dominated_list = dominated_pairs(p);
    // Oversized sources skip the individual absorptions: the composite
    // simplify move (already emitted) applies them all at once, and each
    // skipped quotient is a full constraint rebuild on a big alphabet.
    if !subset_rows_only {
        for &(a, b) in &dominated_list {
            if let Some((rep, members)) = &orbit {
                // Ordered absorptions (a→b) share the orbit-representative
                // rule with the unordered merges.
                if !pair_is_orbit_rep(a, b, rep, members) {
                    continue;
                }
            }
            let mut rep_map: Vec<usize> = (0..n).collect();
            rep_map[a] = b;
            let what = format!(
                "absorb {}→{}",
                p.alphabet().name(Label::from_index(a)),
                p.alphabet().name(Label::from_index(b))
            );
            if let Some(mv) = quotient(p, &rep_map, what) {
                out.push(mv);
            }
        }
    }
    if let Some(mv) = coarsen_move(p) {
        out.push(mv);
    }
    let dominated: std::collections::HashSet<(usize, usize)> =
        dominated_list.into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect();
    let rows = if subset_rows_only { Some(p.edge_rows()) } else { None };
    match &orbit {
        None => out.extend(pairwise_merges(p, &dominated)),
        Some((rep, members)) => {
            for a in 0..n {
                for b in (a + 1)..n {
                    if dominated.contains(&(a, b)) || !pair_is_orbit_rep(a, b, rep, members) {
                        continue;
                    }
                    if let Some(rows) = &rows {
                        if !rows[a].is_subset(&rows[b]) && !rows[b].is_subset(&rows[a]) {
                            continue; // incomparable rows: see fn docs
                        }
                    }
                    let mut rep_map: Vec<usize> = (0..n).collect();
                    rep_map[b] = a;
                    let what = format!(
                        "merge {}←{}",
                        p.alphabet().name(Label::from_index(a)),
                        p.alphabet().name(Label::from_index(b))
                    );
                    if let Some(mv) = quotient(p, &rep_map, what) {
                        out.push(mv);
                    }
                }
            }
        }
    }
    out
}

/// Node-configuration count above which per-configuration drop moves are
/// not generated (they would dominate the branching factor).
const MAX_CONFIG_DROPS: usize = 24;

/// All hardening candidates of `p`, in deterministic order: label drops
/// first, then (for small constraints) single node-configuration drops.
/// Results with an empty node or edge constraint are unsolvable and are
/// not emitted.
pub fn harden_moves(p: &Problem) -> Vec<HardenMove> {
    harden_moves_impl(p, None)
}

/// [`harden_moves`] with sibling-orbit pruning: dropping a label produces
/// a problem isomorphic to dropping any of its [`twin_classes`] siblings,
/// so only the class representative's drop is materialized. The searched
/// class set is unchanged (every pruned candidate is isomorphic to an
/// earlier emitted one); configuration drops are not pruned.
pub fn harden_moves_pruned(p: &Problem) -> Vec<HardenMove> {
    harden_moves_impl(p, Some(twin_classes(p)))
}

fn harden_moves_impl(p: &Problem, twins: Option<Vec<usize>>) -> Vec<HardenMove> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for dropped in 0..n {
        if let Some(rep) = &twins {
            if rep[dropped] != dropped {
                continue; // drop(l) ≅ drop(rep[l]), which was emitted first
            }
        }
        let keep = LabelSet::from_labels((0..n).filter(|&i| i != dropped).map(Label::from_index));
        let node = p.node().restrict(&keep);
        let edge = p.edge().restrict(&keep);
        if node.is_empty() || edge.is_empty() {
            continue;
        }
        // Result alphabet: surviving labels keep their names; the witness
        // map is the identity embedding back into `p`'s alphabet.
        let names =
            (0..n).filter(|&i| i != dropped).map(|i| p.alphabet().name(Label::from_index(i)));
        let Ok(alphabet) = Alphabet::from_names(names) else { continue };
        let mut back = Vec::with_capacity(n - 1);
        let mut fwd = vec![Label::from_index(0); n];
        for (new_ix, old_ix) in (0..n).filter(|&i| i != dropped).enumerate() {
            back.push(Label::from_index(old_ix));
            fwd[old_ix] = Label::from_index(new_ix);
        }
        let node = node.map_labels(|l| fwd[l.index()]);
        let edge = edge.map_labels(|l| fwd[l.index()]);
        let Ok(result) = Problem::new(format!("{}*", p.name()), alphabet, node, edge) else {
            continue;
        };
        out.push(HardenMove {
            what: format!("drop label {}", p.alphabet().name(Label::from_index(dropped))),
            map: back,
            result,
        });
    }
    if p.node().len() <= MAX_CONFIG_DROPS {
        let identity: Vec<Label> = (0..n).map(Label::from_index).collect();
        for (ix, dropped_cfg) in p.node().iter().enumerate() {
            if p.node().len() < 2 {
                break;
            }
            let node = roundelim_core::constraint::Constraint::from_configs(
                p.node().arity(),
                p.node().iter().filter(|c| *c != dropped_cfg).cloned(),
            );
            let Ok(node) = node else { continue };
            let Ok(result) = Problem::new(
                format!("{}*", p.name()),
                p.alphabet().clone(),
                node,
                p.edge().clone(),
            ) else {
                continue;
            };
            out.push(HardenMove {
                what: format!("drop node config #{ix}"),
                map: identity.clone(),
                result,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::relax::check_relaxation;

    fn sc() -> Problem {
        Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap()
    }

    #[test]
    fn merges_carry_valid_witnesses() {
        let p = Problem::parse("name: p\nnode: A A | A B | B C\nedge: A B | A C | B C").unwrap();
        let moves = merge_moves(&p);
        assert_eq!(moves.len(), 3); // C(3,2) unordered pairs
        for mv in &moves {
            assert!(
                check_relaxation(&p, &mv.result, &mv.map),
                "merge witness failed for {}",
                mv.what
            );
            assert_eq!(mv.result.alphabet().len(), 2);
        }
    }

    #[test]
    fn coarsening_groups_edge_equal_labels() {
        // B and C have identical edge rows (both compatible exactly with A).
        let p = Problem::parse("name: p\nnode: A B C\nedge: A B | A C").unwrap();
        let mv = coarsen_move(&p).expect("B and C are edge-equal");
        assert_eq!(mv.result.alphabet().len(), 2);
        assert!(check_relaxation(&p, &mv.result, &mv.map));
        // All labels already distinct on the edge side ⇒ no move.
        assert!(coarsen_move(&sc()).is_none());
    }

    #[test]
    fn hardenings_carry_valid_witnesses() {
        let p = Problem::parse("name: p\nnode: A A | A B\nedge: A A | A B").unwrap();
        for mv in harden_moves(&p) {
            assert!(
                check_relaxation(&mv.result, &p, &mv.map),
                "harden witness failed for {}",
                mv.what
            );
            assert!(!mv.result.node().is_empty() && !mv.result.edge().is_empty());
        }
    }

    #[test]
    fn harden_never_emits_unsolvable_results() {
        // Dropping label O or I kills the edge constraint entirely.
        let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
        for mv in harden_moves(&so) {
            assert!(!mv.result.node().is_empty());
            assert!(!mv.result.edge().is_empty());
        }
    }

    #[test]
    fn dominated_label_is_absorbed() {
        // B is dominated by A: every config survives the replacement B→A.
        let p = Problem::parse("name: p\nnode: A A | A B\nedge: A A | A B").unwrap();
        let moves = dominated_merge_moves(&p);
        assert_eq!(moves.len(), 1, "only B→A absorbs; A→B does not");
        assert!(moves[0].what.contains("absorb B→A"), "{}", moves[0].what);
        assert!(check_relaxation(&p, &moves[0].result, &moves[0].map));
        // The quotient adds no configurations: it is p minus label B.
        assert_eq!(moves[0].result.node().len(), 1);
        assert_eq!(moves[0].result.edge().len(), 1);
    }

    #[test]
    fn simplify_composes_absorptions_into_one_witness() {
        // B and C both absorb into A; the composite map must still verify.
        let p = Problem::parse("name: p\nnode: A A | A B | A C\nedge: A A | A B | A C").unwrap();
        let mv = simplify_move(&p).expect("two dominated labels");
        assert_eq!(mv.result.alphabet().len(), 1);
        assert!(check_relaxation(&p, &mv.result, &mv.map));
        assert!(simplify_move(&sc()).is_none(), "sc has no dominated labels");
    }

    #[test]
    fn relax_moves_are_deterministic() {
        let p = sc();
        let a: Vec<String> = relax_moves(&p).into_iter().map(|m| m.what).collect();
        let b: Vec<String> = relax_moves(&p).into_iter().map(|m| m.what).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn orbit_pruning_only_drops_isomorphic_duplicates() {
        use rand::{Rng, SeedableRng};
        use roundelim_core::iso::are_isomorphic;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x0B17);
        let mut pruned_any = false;
        for trial in 0..60 {
            let n = rng.gen_range(2..=5);
            let delta = rng.gen_range(2..=3);
            let names: Vec<String> = (0..n).map(|i| format!("L{i}")).collect();
            let alphabet =
                roundelim_core::label::Alphabet::from_names(names.iter().map(String::as_str))
                    .unwrap();
            let mut node = roundelim_core::constraint::Constraint::new(delta).unwrap();
            for m in roundelim_core::config::all_multisets(n, delta) {
                if rng.gen_bool(0.4) {
                    node.insert(m).unwrap();
                }
            }
            let mut edge = roundelim_core::constraint::Constraint::new(2).unwrap();
            for m in roundelim_core::config::all_multisets(n, 2) {
                if rng.gen_bool(0.5) {
                    edge.insert(m).unwrap();
                }
            }
            if node.is_empty() || edge.is_empty() {
                continue;
            }
            let Ok(p) = Problem::new("t", alphabet, node, edge) else { continue };
            let full = relax_moves(&p);
            let pruned = relax_moves_pruned(&p, false);
            assert!(pruned.len() <= full.len());
            pruned_any |= pruned.len() < full.len();
            // The pruned list is a subsequence of the full list …
            let mut it = full.iter();
            for mv in &pruned {
                assert!(
                    it.any(|f| f.what == mv.what && f.map == mv.map && f.result == mv.result),
                    "trial {trial}: pruned move {} not in unpruned order",
                    mv.what
                );
            }
            // … and every dropped candidate is isomorphic to a kept one
            // (so the searched class set cannot change).
            for mv in &full {
                assert!(
                    pruned.iter().any(|k| are_isomorphic(&k.result, &mv.result)),
                    "trial {trial}: dropped move {} has no isomorphic representative",
                    mv.what
                );
            }
            // The subset-rows restriction is itself a subsequence.
            let rows_only = relax_moves_pruned(&p, true);
            let mut it = pruned.iter();
            for mv in &rows_only {
                assert!(it.any(|f| f.what == mv.what && f.map == mv.map));
            }
        }
        assert!(pruned_any, "the generator never pruned anything — test lost its teeth");
    }

    #[test]
    fn harden_pruning_only_drops_isomorphic_duplicates() {
        use roundelim_core::iso::are_isomorphic;
        // 3-coloring: the three labels are fully interchangeable, so the
        // three label drops collapse to one representative.
        let p = Problem::parse("name: c3\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3").unwrap();
        let full = harden_moves(&p);
        let pruned = harden_moves_pruned(&p);
        assert!(pruned.len() < full.len());
        for mv in &full {
            assert!(pruned.iter().any(|k| are_isomorphic(&k.result, &mv.result)));
        }
    }

    #[test]
    fn twin_classes_detects_full_symmetry() {
        let c3 = Problem::parse("name: c3\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3").unwrap();
        assert_eq!(twin_classes(&c3), vec![0, 0, 0]);
        // sc's labels have different roles: all classes singleton.
        assert_eq!(twin_classes(&sc()), vec![0, 1]);
    }
}
