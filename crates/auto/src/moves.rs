//! Candidate search moves: relaxations (for lower bounds) and hardenings
//! (for upper bounds), generated from the constraint structure.
//!
//! Relaxations make a problem easier — any algorithm for the current
//! problem solves the relaxed one after a 0-round label translation — so a
//! lower bound proved for the relaxed problem transfers to the current one.
//! The generator produces:
//!
//! * **label merges** — quotient the problem by identifying two labels
//!   (§2.1's "simplify the problem description" move, the one the paper
//!   applies by hand between speedup steps);
//! * **label-set coarsenings** — one move merging every group of labels
//!   that behave identically on the edge side, the structural batch
//!   version of the same idea.
//!
//! Hardenings go the other way — the new problem is at least as hard, so
//! an upper bound for it transfers back (§4.5's Π₁ → Π₁* move). Generated:
//! dropping a label (with every configuration mentioning it) and dropping
//! a single node configuration.
//!
//! Every move carries its witness label map; the search emits these maps
//! into certificates, and [`crate::certificate::Certificate::verify`]
//! replays them with `roundelim_core::relax::check_relaxation`.

use roundelim_core::label::{Alphabet, Label};
use roundelim_core::labelset::LabelSet;
use roundelim_core::problem::Problem;

/// A relaxation candidate: `result` is easier than the source problem, as
/// witnessed by `map` (source label → result label).
#[derive(Debug, Clone)]
pub struct RelaxMove {
    /// Human-readable description, e.g. `merge A←B`.
    pub what: String,
    /// Witness label map (indexed by source label).
    pub map: Vec<Label>,
    /// The relaxed problem.
    pub result: Problem,
}

/// A hardening candidate: `result` is at least as hard as the source
/// problem, as witnessed by `map` (result label → source label).
#[derive(Debug, Clone)]
pub struct HardenMove {
    /// Human-readable description, e.g. `drop label X`.
    pub what: String,
    /// Witness label map (indexed by result label).
    pub map: Vec<Label>,
    /// The hardened problem.
    pub result: Problem,
}

/// Builds the quotient of `p` under a partition of its labels.
///
/// `rep[i]` names the representative (an old label index) of old label `i`;
/// representatives must map to themselves. Returns the quotient problem and
/// the witness map, or `None` if the construction fails (it cannot for a
/// well-formed partition, but the guard keeps candidate generation total).
fn quotient(p: &Problem, rep: &[usize], what: String) -> Option<RelaxMove> {
    debug_assert!(rep.iter().all(|&r| rep[r] == r), "representatives must be fixed points");
    // New alphabet: representatives in old-index order keep their names.
    let mut new_index = vec![usize::MAX; p.alphabet().len()];
    let mut names: Vec<&str> = Vec::new();
    for i in 0..p.alphabet().len() {
        if rep[i] == i {
            new_index[i] = names.len();
            names.push(p.alphabet().name(Label::from_index(i)));
        }
    }
    let alphabet = Alphabet::from_names(names).ok()?;
    let map: Vec<Label> =
        (0..p.alphabet().len()).map(|i| Label::from_index(new_index[rep[i]])).collect();
    let node = p.node().map_labels(|l| map[l.index()]);
    let edge = p.edge().map_labels(|l| map[l.index()]);
    let result = Problem::new(format!("{}″", p.name()), alphabet, node, edge).ok()?;
    Some(RelaxMove { what, map, result })
}

/// All pairwise label-merge relaxations of `p` (one per unordered label
/// pair; merging `{a, b}` either way yields the same quotient up to
/// renaming, so the smaller index is kept as representative).
pub fn merge_moves(p: &Problem) -> Vec<RelaxMove> {
    pairwise_merges(p, &std::collections::HashSet::new())
}

/// [`merge_moves`] minus the unordered pairs in `skip`.
fn pairwise_merges(
    p: &Problem,
    skip: &std::collections::HashSet<(usize, usize)>,
) -> Vec<RelaxMove> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if skip.contains(&(a, b)) {
                continue;
            }
            let mut rep: Vec<usize> = (0..n).collect();
            rep[b] = a;
            let what = format!(
                "merge {}←{}",
                p.alphabet().name(Label::from_index(a)),
                p.alphabet().name(Label::from_index(b))
            );
            if let Some(mv) = quotient(p, &rep, what) {
                out.push(mv);
            }
        }
    }
    out
}

/// Dominated-label merges: merge `a` into `b` whenever *every*
/// configuration containing `a` stays a configuration after replacing `a`
/// by `b` (on both the node and the edge side). The quotient then adds no
/// new configurations — it is exactly `p` with label `a` dropped — so the
/// relaxation is "free" in the round-eliminator sense: it shrinks the
/// description without weakening the constraints anywhere else. These are
/// the merges that collapse a derived problem back onto the §4.4/§4.5
/// fixed-point shapes, so they are generated before the generic pairwise
/// merges.
pub fn dominated_merge_moves(p: &Problem) -> Vec<RelaxMove> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for (a, b) in dominated_pairs(p) {
        let mut rep: Vec<usize> = (0..n).collect();
        rep[a] = b;
        // `quotient` wants representatives to be fixed points; b is.
        let what = format!(
            "absorb {}→{}",
            p.alphabet().name(Label::from_index(a)),
            p.alphabet().name(Label::from_index(b))
        );
        if let Some(mv) = quotient(p, &rep, what) {
            out.push(mv);
        }
    }
    out
}

/// All ordered pairs `(a, b)` where `b` dominates `a` (see
/// [`dominated_merge_moves`]), in lexicographic order.
fn dominated_pairs(p: &Problem) -> Vec<(usize, usize)> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for a in 0..n {
        let la = Label::from_index(a);
        for b in 0..n {
            if a == b {
                continue;
            }
            let lb = Label::from_index(b);
            let dominated = |c: &roundelim_core::constraint::Constraint| {
                c.iter().filter(|cfg| cfg.contains(la)).all(|cfg| c.contains(&cfg.replace(la, lb)))
            };
            if dominated(p.node()) && dominated(p.edge()) {
                out.push((a, b));
            }
        }
    }
    out
}

/// The full simplification of `p`: absorb dominated labels repeatedly (the
/// lexicographically first applicable absorption each round) until none
/// remain, composing the witness maps into one relaxation move. This is
/// the round-eliminator "simplify" pass as a single search edge; `None`
/// when no label is dominated.
pub fn simplify_move(p: &Problem) -> Option<RelaxMove> {
    let mut current = p.clone();
    let mut map: Vec<Label> = (0..p.alphabet().len()).map(Label::from_index).collect();
    let mut absorbed = 0usize;
    loop {
        let step = dominated_merge_moves(&current);
        let Some(mv) = step.into_iter().next() else { break };
        for slot in map.iter_mut() {
            *slot = mv.map[slot.index()];
        }
        current = mv.result;
        absorbed += 1;
    }
    if absorbed == 0 {
        return None;
    }
    Some(RelaxMove {
        what: format!("simplify (absorb {absorbed} dominated labels)"),
        map,
        result: current,
    })
}

/// The structural coarsening of `p`: merge every group of labels with an
/// identical edge-side compatibility row (labels the edge constraint cannot
/// tell apart). Returns `None` when the grouping is trivial (all groups are
/// singletons) — then the move would be the identity.
pub fn coarsen_move(p: &Problem) -> Option<RelaxMove> {
    let n = p.alphabet().len();
    let rows = p.edge().compatibility_matrix(n).ok()?;
    let mut rep: Vec<usize> = (0..n).collect();
    let mut merged = false;
    for i in 0..n {
        for j in 0..i {
            if rows[i] == rows[j] {
                rep[i] = rep[j];
                merged = true;
                break;
            }
        }
    }
    if !merged {
        return None;
    }
    quotient(p, &rep, "coarsen edge-equal labels".to_owned())
}

/// All relaxation candidates of `p`, in deterministic order: the composite
/// simplification first, then single dominated merges (free shrinkage),
/// then the structural coarsening, then the generic pairwise merges.
/// Generic merges of pairs already covered by a dominated merge are
/// skipped — identifying `{a, b}` yields the same quotient up to renaming
/// either way, and every duplicate candidate would cost a full cache key
/// downstream.
pub fn relax_moves(p: &Problem) -> Vec<RelaxMove> {
    let mut out = Vec::new();
    if let Some(mv) = simplify_move(p) {
        out.push(mv);
    }
    out.extend(dominated_merge_moves(p));
    if let Some(mv) = coarsen_move(p) {
        out.push(mv);
    }
    let dominated: std::collections::HashSet<(usize, usize)> =
        dominated_pairs(p).into_iter().map(|(a, b)| (a.min(b), a.max(b))).collect();
    out.extend(pairwise_merges(p, &dominated));
    out
}

/// Node-configuration count above which per-configuration drop moves are
/// not generated (they would dominate the branching factor).
const MAX_CONFIG_DROPS: usize = 24;

/// All hardening candidates of `p`, in deterministic order: label drops
/// first, then (for small constraints) single node-configuration drops.
/// Results with an empty node or edge constraint are unsolvable and are
/// not emitted.
pub fn harden_moves(p: &Problem) -> Vec<HardenMove> {
    let n = p.alphabet().len();
    let mut out = Vec::new();
    for dropped in 0..n {
        let keep = LabelSet::from_labels((0..n).filter(|&i| i != dropped).map(Label::from_index));
        let node = p.node().restrict(&keep);
        let edge = p.edge().restrict(&keep);
        if node.is_empty() || edge.is_empty() {
            continue;
        }
        // Result alphabet: surviving labels keep their names; the witness
        // map is the identity embedding back into `p`'s alphabet.
        let names =
            (0..n).filter(|&i| i != dropped).map(|i| p.alphabet().name(Label::from_index(i)));
        let Ok(alphabet) = Alphabet::from_names(names) else { continue };
        let mut back = Vec::with_capacity(n - 1);
        let mut fwd = vec![Label::from_index(0); n];
        for (new_ix, old_ix) in (0..n).filter(|&i| i != dropped).enumerate() {
            back.push(Label::from_index(old_ix));
            fwd[old_ix] = Label::from_index(new_ix);
        }
        let node = node.map_labels(|l| fwd[l.index()]);
        let edge = edge.map_labels(|l| fwd[l.index()]);
        let Ok(result) = Problem::new(format!("{}*", p.name()), alphabet, node, edge) else {
            continue;
        };
        out.push(HardenMove {
            what: format!("drop label {}", p.alphabet().name(Label::from_index(dropped))),
            map: back,
            result,
        });
    }
    if p.node().len() <= MAX_CONFIG_DROPS {
        let identity: Vec<Label> = (0..n).map(Label::from_index).collect();
        for (ix, dropped_cfg) in p.node().iter().enumerate() {
            if p.node().len() < 2 {
                break;
            }
            let node = roundelim_core::constraint::Constraint::from_configs(
                p.node().arity(),
                p.node().iter().filter(|c| *c != dropped_cfg).cloned(),
            );
            let Ok(node) = node else { continue };
            let Ok(result) = Problem::new(
                format!("{}*", p.name()),
                p.alphabet().clone(),
                node,
                p.edge().clone(),
            ) else {
                continue;
            };
            out.push(HardenMove {
                what: format!("drop node config #{ix}"),
                map: identity.clone(),
                result,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use roundelim_core::relax::check_relaxation;

    fn sc() -> Problem {
        Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap()
    }

    #[test]
    fn merges_carry_valid_witnesses() {
        let p = Problem::parse("name: p\nnode: A A | A B | B C\nedge: A B | A C | B C").unwrap();
        let moves = merge_moves(&p);
        assert_eq!(moves.len(), 3); // C(3,2) unordered pairs
        for mv in &moves {
            assert!(
                check_relaxation(&p, &mv.result, &mv.map),
                "merge witness failed for {}",
                mv.what
            );
            assert_eq!(mv.result.alphabet().len(), 2);
        }
    }

    #[test]
    fn coarsening_groups_edge_equal_labels() {
        // B and C have identical edge rows (both compatible exactly with A).
        let p = Problem::parse("name: p\nnode: A B C\nedge: A B | A C").unwrap();
        let mv = coarsen_move(&p).expect("B and C are edge-equal");
        assert_eq!(mv.result.alphabet().len(), 2);
        assert!(check_relaxation(&p, &mv.result, &mv.map));
        // All labels already distinct on the edge side ⇒ no move.
        assert!(coarsen_move(&sc()).is_none());
    }

    #[test]
    fn hardenings_carry_valid_witnesses() {
        let p = Problem::parse("name: p\nnode: A A | A B\nedge: A A | A B").unwrap();
        for mv in harden_moves(&p) {
            assert!(
                check_relaxation(&mv.result, &p, &mv.map),
                "harden witness failed for {}",
                mv.what
            );
            assert!(!mv.result.node().is_empty() && !mv.result.edge().is_empty());
        }
    }

    #[test]
    fn harden_never_emits_unsolvable_results() {
        // Dropping label O or I kills the edge constraint entirely.
        let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
        for mv in harden_moves(&so) {
            assert!(!mv.result.node().is_empty());
            assert!(!mv.result.edge().is_empty());
        }
    }

    #[test]
    fn dominated_label_is_absorbed() {
        // B is dominated by A: every config survives the replacement B→A.
        let p = Problem::parse("name: p\nnode: A A | A B\nedge: A A | A B").unwrap();
        let moves = dominated_merge_moves(&p);
        assert_eq!(moves.len(), 1, "only B→A absorbs; A→B does not");
        assert!(moves[0].what.contains("absorb B→A"), "{}", moves[0].what);
        assert!(check_relaxation(&p, &moves[0].result, &moves[0].map));
        // The quotient adds no configurations: it is p minus label B.
        assert_eq!(moves[0].result.node().len(), 1);
        assert_eq!(moves[0].result.edge().len(), 1);
    }

    #[test]
    fn simplify_composes_absorptions_into_one_witness() {
        // B and C both absorb into A; the composite map must still verify.
        let p = Problem::parse("name: p\nnode: A A | A B | A C\nedge: A A | A B | A C").unwrap();
        let mv = simplify_move(&p).expect("two dominated labels");
        assert_eq!(mv.result.alphabet().len(), 1);
        assert!(check_relaxation(&p, &mv.result, &mv.map));
        assert!(simplify_move(&sc()).is_none(), "sc has no dominated labels");
    }

    #[test]
    fn relax_moves_are_deterministic() {
        let p = sc();
        let a: Vec<String> = relax_moves(&p).into_iter().map(|m| m.what).collect();
        let b: Vec<String> = relax_moves(&p).into_iter().map(|m| m.what).collect();
        assert_eq!(a, b);
    }
}
