//! Fault injection for robustness testing.
//!
//! A *failpoint* is a named site in the search/persistence code where a
//! test can inject a failure. Sites are armed through the
//! `ROUNDELIM_FAILPOINTS` environment variable (read once per process):
//!
//! ```text
//! ROUNDELIM_FAILPOINTS="site=action[@count][,site=action[@count]]..."
//! ```
//!
//! * `action` is `panic` (unwind at the site — worker panics are captured
//!   by the search and degrade the beam instead of aborting) or `kill`
//!   (abort the whole process, simulating a crash/OOM-kill at exactly that
//!   point);
//! * `count` (default 1) fires the action on the *n*-th hit of the site
//!   and never again, so e.g. `checkpoint-write=kill@2` crashes the
//!   process right before the second checkpoint write.
//!
//! Current sites:
//!
//! | site               | where it fires                                       |
//! |--------------------|------------------------------------------------------|
//! | `checkpoint-write` | [`crate::checkpoint::Checkpoint::save`], before the atomic write |
//! | `cache-insert`     | [`crate::cache::CanonCache`] keyed intern, before the insert |
//! | `worker-panic`     | per item inside the search's parallel map workers    |
//!
//! The whole layer is compiled out without the (default-on) `failpoints`
//! cargo feature: [`hit`] becomes an empty inline function, so production
//! builds that opt out pay nothing.
//!
//! Malformed `ROUNDELIM_FAILPOINTS` entries are reported to stderr once and
//! ignored — fault injection must never turn into a fault of its own.

#[cfg(feature = "failpoints")]
mod imp {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Action {
        Panic,
        Kill,
    }

    #[derive(Debug)]
    struct Point {
        site: String,
        action: Action,
        fire_at: usize,
        hits: AtomicUsize,
    }

    fn parse(spec: &str) -> Vec<Point> {
        let mut points = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((site, rest)) = entry.split_once('=') else {
                eprintln!("ROUNDELIM_FAILPOINTS: ignoring `{entry}` (want site=action[@count])");
                continue;
            };
            let (action, count) = match rest.split_once('@') {
                Some((a, c)) => (a, c.parse::<usize>().ok()),
                None => (rest, Some(1)),
            };
            let action = match action {
                "panic" => Action::Panic,
                "kill" => Action::Kill,
                _ => {
                    eprintln!(
                        "ROUNDELIM_FAILPOINTS: ignoring `{entry}` (unknown action `{action}`)"
                    );
                    continue;
                }
            };
            let Some(fire_at) = count.filter(|&c| c >= 1) else {
                eprintln!("ROUNDELIM_FAILPOINTS: ignoring `{entry}` (count must be ≥ 1)");
                continue;
            };
            points.push(Point {
                site: site.to_owned(),
                action,
                fire_at,
                hits: AtomicUsize::new(0),
            });
        }
        points
    }

    fn points() -> &'static [Point] {
        static POINTS: OnceLock<Vec<Point>> = OnceLock::new();
        POINTS.get_or_init(|| {
            std::env::var("ROUNDELIM_FAILPOINTS").map(|s| parse(&s)).unwrap_or_default()
        })
    }

    pub fn hit(site: &str) {
        for p in points() {
            if p.site != site {
                continue;
            }
            // fetch_add makes each hit index unique even under concurrent
            // worker hits, so the action fires exactly once.
            let n = p.hits.fetch_add(1, Ordering::SeqCst) + 1;
            if n == p.fire_at {
                match p.action {
                    Action::Panic => panic!("failpoint `{site}` fired (injected panic, hit {n})"),
                    Action::Kill => {
                        eprintln!("failpoint `{site}` fired (hit {n}): aborting process");
                        std::process::abort();
                    }
                }
            }
        }
    }
}

/// Hits the failpoint `site`: a no-op unless the site is armed through
/// `ROUNDELIM_FAILPOINTS` (see module docs), in which case the armed action
/// fires on the configured hit count.
#[cfg(feature = "failpoints")]
pub fn hit(site: &str) {
    imp::hit(site);
}

/// Failpoints are compiled out (the `failpoints` feature is disabled):
/// every site is an empty inline call.
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn hit(_site: &str) {}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    // The firing behavior is covered end to end by the CLI crash-recovery
    // tests (a child process with ROUNDELIM_FAILPOINTS set); in-process we
    // only pin that unarmed sites are free of side effects.
    #[test]
    fn unarmed_sites_are_noops() {
        for _ in 0..3 {
            super::hit("no-such-site");
        }
    }
}
