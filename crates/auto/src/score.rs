//! Problem scoring for beam selection.
//!
//! The search prefers small problems: speedup steps on small alphabets are
//! cheap, and the paper's hand derivations (§4.4–§4.6) all funnel the
//! iteration through few-label problems (relaxing whenever the description
//! grows). Lower scores are better; ties are broken deterministically by
//! the caller (node id order).

use roundelim_core::problem::Problem;

/// A problem's search priority, ordered lexicographically: alphabet size
/// dominates (it drives every downstream cost — speedup, canonicalization,
/// 0-round decision), configuration count refines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Score {
    /// Number of alphabet labels.
    pub labels: usize,
    /// Total configuration count (`|node| + |edge|`).
    pub configs: usize,
}

/// Scores a problem (lower is better).
pub fn score(p: &Problem) -> Score {
    Score { labels: p.alphabet().len(), configs: p.node().len() + p.edge().len() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fewer_labels_beats_fewer_configs() {
        let small = Problem::parse("name: s\nnode: A A | A B | B B\nedge: A B | A A").unwrap();
        let big = Problem::parse("name: b\nnode: A B C\nedge: A A").unwrap();
        assert!(score(&small) < score(&big));
    }

    #[test]
    fn config_count_breaks_label_ties() {
        let lean = Problem::parse("name: l\nnode: A B\nedge: A B").unwrap();
        let fat = Problem::parse("name: f\nnode: A B | A A\nedge: A B | B B").unwrap();
        assert!(score(&lean) < score(&fat));
        assert_eq!(score(&lean).labels, score(&fat).labels);
    }
}
