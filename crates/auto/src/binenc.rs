//! `roundelim-bin-v1` codecs for this crate's types.
//!
//! `roundelim-core`'s [`binenc`](roundelim_core::binenc) module owns the
//! encoding primitives (frames, sections, the [`Problem`] codec); this
//! module layers the [`Certificate`] and [`CacheSnapshot`] codecs on top,
//! since their fields live here. The layouts are pinned, alongside the wire
//! protocol, in `docs/PROTOCOL.md`.
//!
//! Like everything in `roundelim-bin-v1`, the codecs are bit-exact: decode
//! ∘ encode is the identity on values *and* re-encoding decoded values
//! reproduces the input bytes, which the daemon's proof store and the v2
//! checkpoint format rely on for byte-identical restarts (property-tested
//! in `tests/binenc_props.rs`).

use crate::cache::{CacheSnapshot, CacheStats, NodeId, SnapshotEntry};
use crate::certificate::{CertVerdict, Certificate, Direction, Edge};
use crate::search::SearchStats;
use roundelim_core::binenc::{decode_problem, encode_problem, frame, unframe, Dec, Enc};
use roundelim_core::error::{Error, Result};
use roundelim_core::label::Label;
use roundelim_core::sequence::ZeroRoundModel;

fn bad(reason: impl Into<String>) -> Error {
    Error::Parse { line: 0, reason: format!("binenc: {}", reason.into()) }
}

/// Encodes a search direction as one byte.
pub fn encode_direction(d: Direction, e: &mut Enc) {
    e.u8(match d {
        Direction::Lower => 0,
        Direction::Upper => 1,
    });
}

/// Decodes a search direction.
///
/// # Errors
///
/// [`Error::Parse`] on an unknown tag.
pub fn decode_direction(d: &mut Dec<'_>) -> Result<Direction> {
    match d.u8("direction")? {
        0 => Ok(Direction::Lower),
        1 => Ok(Direction::Upper),
        t => Err(bad(format!("unknown direction tag {t}"))),
    }
}

/// Encodes a 0-round model as one byte.
pub fn encode_model(m: ZeroRoundModel, e: &mut Enc) {
    e.u8(match m {
        ZeroRoundModel::PlainPn => 0,
        ZeroRoundModel::Oriented => 1,
    });
}

/// Decodes a 0-round model.
///
/// # Errors
///
/// [`Error::Parse`] on an unknown tag.
pub fn decode_model(d: &mut Dec<'_>) -> Result<ZeroRoundModel> {
    match d.u8("model")? {
        0 => Ok(ZeroRoundModel::PlainPn),
        1 => Ok(ZeroRoundModel::Oriented),
        t => Err(bad(format!("unknown model tag {t}"))),
    }
}

fn encode_label_map(map: &[Label], e: &mut Enc) {
    e.u32(map.len() as u32);
    for l in map {
        e.u32(l.index() as u32);
    }
}

fn decode_label_map(d: &mut Dec<'_>) -> Result<Vec<Label>> {
    let n = d.u32("label map length")? as usize;
    let mut map = Vec::with_capacity(n);
    for _ in 0..n {
        let ix = d.u32("label map entry")? as usize;
        if ix > usize::from(u16::MAX) {
            return Err(bad(format!("label index {ix} out of range")));
        }
        map.push(Label::from_index(ix));
    }
    Ok(map)
}

/// Encodes a derivation edge: a tag byte, plus the witness map for
/// relaxations/hardenings.
pub fn encode_edge(edge: &Edge, e: &mut Enc) {
    match edge {
        Edge::Step => e.u8(0),
        Edge::Relax { map } => {
            e.u8(1);
            encode_label_map(map, e);
        }
        Edge::Harden { map } => {
            e.u8(2);
            encode_label_map(map, e);
        }
    }
}

/// Decodes a derivation edge.
///
/// # Errors
///
/// [`Error::Parse`] on an unknown tag or truncation.
pub fn decode_edge(d: &mut Dec<'_>) -> Result<Edge> {
    match d.u8("edge tag")? {
        0 => Ok(Edge::Step),
        1 => Ok(Edge::Relax { map: decode_label_map(d)? }),
        2 => Ok(Edge::Harden { map: decode_label_map(d)? }),
        t => Err(bad(format!("unknown edge tag {t}"))),
    }
}

fn encode_verdict(v: &CertVerdict, e: &mut Enc) {
    match v {
        CertVerdict::Unbounded { cycle_start, iso_map } => {
            e.u8(0);
            e.usize(*cycle_start);
            encode_label_map(iso_map, e);
        }
        CertVerdict::LowerBound { rounds } => {
            e.u8(1);
            e.usize(*rounds);
        }
        CertVerdict::UpperBound { rounds } => {
            e.u8(2);
            e.usize(*rounds);
        }
    }
}

fn decode_verdict(d: &mut Dec<'_>) -> Result<CertVerdict> {
    match d.u8("verdict tag")? {
        0 => Ok(CertVerdict::Unbounded {
            cycle_start: d.usize("cycle_start")?,
            iso_map: decode_label_map(d)?,
        }),
        1 => Ok(CertVerdict::LowerBound { rounds: d.usize("rounds")? }),
        2 => Ok(CertVerdict::UpperBound { rounds: d.usize("rounds")? }),
        t => Err(bad(format!("unknown verdict tag {t}"))),
    }
}

/// Encodes a certificate (unframed; see [`certificate_to_bytes`] for the
/// framed at-rest form).
pub fn encode_certificate(c: &Certificate, e: &mut Enc) {
    encode_direction(c.direction, e);
    encode_model(c.model, e);
    e.bool(c.incomplete);
    encode_verdict(&c.verdict, e);
    e.u32(c.problems.len() as u32);
    for p in &c.problems {
        encode_problem(p, e);
    }
    e.u32(c.edges.len() as u32);
    for edge in &c.edges {
        encode_edge(edge, e);
    }
}

/// Decodes a certificate encoded by [`encode_certificate`].
///
/// Structural soundness (chain shapes, witness validity) is *not* checked
/// here — that is [`Certificate::verify`]'s job, exactly as for the JSON
/// codec.
///
/// # Errors
///
/// [`Error::Parse`] on malformed input.
pub fn decode_certificate(d: &mut Dec<'_>) -> Result<Certificate> {
    let direction = decode_direction(d)?;
    let model = decode_model(d)?;
    let incomplete = d.bool("incomplete")?;
    let verdict = decode_verdict(d)?;
    let n = d.u32("problem count")? as usize;
    let mut problems = Vec::with_capacity(n);
    for _ in 0..n {
        problems.push(decode_problem(d)?);
    }
    let n = d.u32("edge count")? as usize;
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push(decode_edge(d)?);
    }
    Ok(Certificate { direction, model, problems, edges, incomplete, verdict })
}

/// Encodes a certificate as one framed `certificate` message.
pub fn certificate_to_bytes(c: &Certificate) -> Vec<u8> {
    let mut e = Enc::new();
    encode_certificate(c, &mut e);
    frame("certificate", &e.into_bytes())
}

/// Decodes one framed `certificate` message.
///
/// # Errors
///
/// Frame errors (magic/kind/checksum/truncation) and codec errors.
pub fn certificate_from_bytes(bytes: &[u8]) -> Result<Certificate> {
    let payload = unframe(bytes, "certificate")?;
    let mut d = Dec::new(payload);
    let c = decode_certificate(&mut d)?;
    d.finish()?;
    Ok(c)
}

/// Encodes the cache counters (5 × u64).
pub fn encode_cache_stats(s: &CacheStats, e: &mut Enc) {
    e.usize(s.classes);
    e.usize(s.dedup_hits);
    e.usize(s.iso_resolutions);
    e.usize(s.step_hits);
    e.usize(s.step_misses);
}

/// Decodes the cache counters.
///
/// # Errors
///
/// [`Error::Parse`] on truncation.
pub fn decode_cache_stats(d: &mut Dec<'_>) -> Result<CacheStats> {
    Ok(CacheStats {
        classes: d.usize("classes")?,
        dedup_hits: d.usize("dedup_hits")?,
        iso_resolutions: d.usize("iso_resolutions")?,
        step_hits: d.usize("step_hits")?,
        step_misses: d.usize("step_misses")?,
    })
}

/// Encodes the search counters (4 × u64 + cache counters).
pub fn encode_search_stats(s: &SearchStats, e: &mut Enc) {
    e.usize(s.expanded);
    e.usize(s.step_failures);
    e.usize(s.depth_reached);
    e.usize(s.worker_panics);
    encode_cache_stats(&s.cache, e);
}

/// Decodes the search counters.
///
/// # Errors
///
/// [`Error::Parse`] on truncation.
pub fn decode_search_stats(d: &mut Dec<'_>) -> Result<SearchStats> {
    Ok(SearchStats {
        expanded: d.usize("expanded")?,
        step_failures: d.usize("step_failures")?,
        depth_reached: d.usize("depth_reached")?,
        worker_panics: d.usize("worker_panics")?,
        cache: decode_cache_stats(d)?,
    })
}

fn encode_entry(entry: &SnapshotEntry, e: &mut Enc) {
    let (problem, step, zero_round) = entry;
    encode_problem(problem, e);
    match step {
        None => e.u8(0),
        Some((succ, derived)) => {
            e.u8(1);
            e.u32(succ.0);
            encode_problem(derived, e);
        }
    }
    for slot in zero_round {
        e.u8(match slot {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
    }
}

fn decode_entry(d: &mut Dec<'_>) -> Result<SnapshotEntry> {
    let problem = decode_problem(d)?;
    let step = match d.u8("step tag")? {
        0 => None,
        1 => {
            let succ = NodeId(d.u32("step successor")?);
            Some((succ, decode_problem(d)?))
        }
        t => return Err(bad(format!("unknown step tag {t}"))),
    };
    let mut zero_round = [None, None];
    for slot in &mut zero_round {
        *slot = match d.u8("zero_round slot")? {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            t => return Err(bad(format!("unknown zero_round tag {t}"))),
        };
    }
    Ok((problem, step, zero_round))
}

/// Encodes a cache snapshot (unframed; see [`snapshot_to_bytes`]).
pub fn encode_snapshot(s: &CacheSnapshot, e: &mut Enc) {
    e.u32(s.entries.len() as u32);
    for entry in &s.entries {
        encode_entry(entry, e);
    }
    e.u32(s.fps.len() as u32);
    for (fp, ids) in &s.fps {
        e.u64(*fp);
        e.u32(ids.len() as u32);
        for id in ids {
            e.u32(id.0);
        }
    }
    encode_cache_stats(&s.stats, e);
}

/// Decodes a cache snapshot encoded by [`encode_snapshot`].
///
/// Structural validation (id ranges, bucket consistency) happens in
/// [`crate::cache::CanonCache::restore`], exactly as for checkpoints.
///
/// # Errors
///
/// [`Error::Parse`] on malformed input.
pub fn decode_snapshot(d: &mut Dec<'_>) -> Result<CacheSnapshot> {
    let n = d.u32("entry count")? as usize;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push(decode_entry(d)?);
    }
    let n = d.u32("fingerprint bucket count")? as usize;
    let mut fps = Vec::with_capacity(n);
    for _ in 0..n {
        let fp = d.u64("fingerprint")?;
        let k = d.u32("bucket size")? as usize;
        let mut ids = Vec::with_capacity(k);
        for _ in 0..k {
            ids.push(NodeId(d.u32("bucket id")?));
        }
        fps.push((fp, ids));
    }
    let stats = decode_cache_stats(d)?;
    Ok(CacheSnapshot { entries, fps, stats })
}

/// Encodes a cache snapshot as one framed `cache-snapshot` message.
pub fn snapshot_to_bytes(s: &CacheSnapshot) -> Vec<u8> {
    let mut e = Enc::new();
    encode_snapshot(s, &mut e);
    frame("cache-snapshot", &e.into_bytes())
}

/// Decodes one framed `cache-snapshot` message.
///
/// # Errors
///
/// Frame errors (magic/kind/checksum/truncation) and codec errors.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<CacheSnapshot> {
    let payload = unframe(bytes, "cache-snapshot")?;
    let mut d = Dec::new(payload);
    let s = decode_snapshot(&mut d)?;
    d.finish()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CanonCache;
    use crate::search::{autolb, SearchOptions};
    use roundelim_core::problem::Problem;

    fn sinkless() -> Problem {
        Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap()
    }

    fn searched_certificate() -> Certificate {
        let out = autolb(&sinkless(), &SearchOptions { threads: 1, ..Default::default() }).unwrap();
        out.certificate.unwrap()
    }

    #[test]
    fn certificate_round_trips_bit_identically() {
        let cert = searched_certificate();
        let bytes = certificate_to_bytes(&cert);
        let back = certificate_from_bytes(&bytes).unwrap();
        assert_eq!(cert, back);
        assert_eq!(bytes, certificate_to_bytes(&back));
        back.verify().unwrap();
    }

    #[test]
    fn certificate_truncation_and_corruption_are_rejected() {
        let bytes = certificate_to_bytes(&searched_certificate());
        for n in [0, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(certificate_from_bytes(&bytes[..n]).is_err(), "prefix {n} accepted");
        }
        let mut flipped = bytes.clone();
        let ix = flipped.len() / 2;
        flipped[ix] ^= 0x10;
        assert!(certificate_from_bytes(&flipped).is_err());
    }

    #[test]
    fn snapshot_round_trips_through_restore() {
        let out = autolb(&sinkless(), &SearchOptions { threads: 1, ..Default::default() }).unwrap();
        assert!(out.stats.cache.classes > 0);
        // Build a snapshot by re-running through the cache directly.
        let mut cache = CanonCache::new();
        let (a, _) = cache.intern(sinkless());
        let stepped = roundelim_core::speedup::full_step(&sinkless()).unwrap().problem().clone();
        let key = crate::cache::cache_key(&stepped);
        cache.record_step(a, stepped, key);
        let snap = cache.snapshot();
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(bytes, snapshot_to_bytes(&back), "re-encoding must be byte-identical");
        let restored = CanonCache::restore(back).unwrap();
        assert_eq!(restored.snapshot().entries.len(), snap.entries.len());
        assert_eq!(snapshot_to_bytes(&restored.snapshot()), bytes);
    }

    #[test]
    fn edge_and_verdict_tags_are_validated() {
        let mut e = Enc::new();
        e.u8(9);
        let buf = e.into_bytes();
        assert!(decode_edge(&mut Dec::new(&buf)).is_err());
        assert!(decode_verdict(&mut Dec::new(&buf)).is_err());
        assert!(decode_direction(&mut Dec::new(&buf)).is_err());
        assert!(decode_model(&mut Dec::new(&buf)).is_err());
    }
}
