//! Crash-safe search snapshots.
//!
//! A [`Checkpoint`] is a complete capture of a bound search at a **depth
//! boundary** (see [`crate::search::CheckpointConf`]): the interned
//! isomorphism classes with their memos, the first-reach parent edges, the
//! fingerprint index, the frontier/goal/deepest loop state, and the effort
//! counters. Because the search is deterministic given that state, a
//! resumed run replays exactly the suffix an uninterrupted run would have
//! executed — verdict, certificate, and counters come out bit-identical at
//! every thread count (property-tested in `tests/checkpoint.rs`).
//!
//! ## On-disk format
//!
//! Snapshots are written in `roundelim-checkpoint-v2`: one checksummed
//! `roundelim-bin-v1` frame (see [`roundelim_core::binenc`]) whose payload
//! encodes the complete boundary state with u32-interned labels — the
//! compact at-rest twin of the in-memory representation. The previous
//! format, `roundelim-checkpoint-v1` (a one-line FNV-1a checksum header
//! followed by a pretty-printed JSON document with problems embedded as
//! text), is still **loaded** transparently: [`Checkpoint::load`] sniffs
//! the leading bytes (`fnv1a64:` ⇒ v1, the binary frame magic ⇒ v2). The
//! v2 encoding of a snapshot is ~2.5× smaller than its v1 pretty-JSON
//! form (`v2_is_much_smaller_than_v1` pins the floor at 2×).
//!
//! Files are written with [`atomic_write`] — temp file, fsync, rename — so
//! a crash mid-write (or the `checkpoint-write` failpoint) leaves either
//! the previous snapshot or the new one, never a torn file; loading
//! rejects any payload whose checksum does not match, in both formats.

use crate::binenc::{
    decode_direction, decode_edge, decode_model, decode_search_stats, encode_direction,
    encode_edge, encode_model, encode_search_stats,
};
use crate::certificate::{edge_from_json, edge_to_json, Direction, Edge};
use crate::failpoint;
use crate::json::Json;
use crate::search::SearchStats;
use roundelim_core::binenc::{
    decode_problem, encode_problem, fnv1a64, frame, unframe, Dec, Enc, MAGIC,
};
use roundelim_core::error::{Error, Result};
use roundelim_core::io::atomic_write;
use roundelim_core::problem::Problem;
use roundelim_core::sequence::ZeroRoundModel;
use std::path::{Path, PathBuf};

/// Schema tag of the legacy JSON on-disk format (still loadable).
pub const SCHEMA: &str = "roundelim-checkpoint-v1";

/// Schema tag of the binary on-disk format ([`Checkpoint::save`] writes it).
pub const SCHEMA_V2: &str = "roundelim-checkpoint-v2";

/// Frame kind of a v2 checkpoint file.
const FRAME_KIND: &str = "checkpoint-v2";

/// The snapshot file inside a checkpoint directory.
pub fn checkpoint_file(dir: &Path) -> PathBuf {
    dir.join("search.ckpt.json")
}

/// One interned isomorphism class: the cache entry plus its search
/// metadata, serialized side by side (they are indexed in lockstep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkEntry {
    /// Representative problem.
    pub problem: Problem,
    /// Step edges on the first-reach path from the root.
    pub depth: usize,
    /// First-reach parent id and connecting edge.
    pub parent: Option<(u32, Edge)>,
    /// Memoized speedup: successor class id and the concrete derived
    /// problem.
    pub step: Option<(u32, Problem)>,
    /// Memoized 0-round verdicts, one slot per [`ZeroRoundModel`].
    pub zero_round: [Option<bool>; 2],
}

/// A boundary snapshot of a bound search (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Which search produced this (resume rejects a direction mismatch).
    pub direction: Direction,
    /// The 0-round model of the search.
    pub model: ZeroRoundModel,
    /// The input problem.
    pub root: Problem,
    /// [`crate::search::SearchOptions::beam_width`] at snapshot time.
    pub beam_width: usize,
    /// [`crate::search::SearchOptions::max_labels`] at snapshot time.
    pub max_labels: usize,
    /// [`crate::search::SearchOptions::use_relaxations`] at snapshot time.
    pub use_relaxations: bool,
    /// [`crate::search::SearchOptions::prune_siblings`] at snapshot time.
    pub prune_siblings: bool,
    /// The depth-loop counter at the boundary.
    pub depth: usize,
    /// Frontier entering `depth`.
    pub frontier: Vec<u32>,
    /// 0-round endpoints found so far.
    pub goals: Vec<u32>,
    /// Depth of the deepest non-goal chain endpoint.
    pub deepest_depth: usize,
    /// The deepest non-goal chain endpoint.
    pub deepest_node: u32,
    /// Effort counters at the boundary (cache counters included).
    pub stats: SearchStats,
    /// The interned classes, in id order.
    pub entries: Vec<CkEntry>,
    /// The cache's fingerprint index, sorted by fingerprint.
    pub fps: Vec<(u64, Vec<u32>)>,
}

fn opt_bool_json(v: Option<bool>) -> Json {
    match v {
        None => Json::Null,
        Some(b) => Json::Bool(b),
    }
}

fn direction_str(d: Direction) -> &'static str {
    match d {
        Direction::Lower => "lower-bound",
        Direction::Upper => "upper-bound",
    }
}

fn model_str(m: ZeroRoundModel) -> &'static str {
    match m {
        ZeroRoundModel::PlainPn => "plain-pn",
        ZeroRoundModel::Oriented => "oriented",
    }
}

fn ids_json(ids: &[u32]) -> Json {
    Json::Arr(ids.iter().map(|&id| Json::Num(u64::from(id))).collect())
}

impl Checkpoint {
    /// Writes the snapshot to `path` atomically (temp file + fsync +
    /// rename) in the checksummed v2 binary format. Hits the
    /// `checkpoint-write` failpoint first, so a fault-injection test can
    /// crash the process at exactly this moment and assert that the
    /// previous snapshot survives intact.
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write.
    pub fn save(&self, path: &Path) -> Result<()> {
        let body = self.to_bin();
        failpoint::hit("checkpoint-write");
        atomic_write(path, &body)
    }

    /// Reads and validates a snapshot in either on-disk format: the binary
    /// v2 written by [`Checkpoint::save`], or a legacy v1 JSON file (so a
    /// search interrupted under an older build resumes under this one).
    ///
    /// # Errors
    ///
    /// I/O errors, a checksum mismatch (torn or corrupted file), an
    /// unknown schema, or a malformed payload.
    pub fn load(path: &Path) -> Result<Checkpoint> {
        let bytes = std::fs::read(path)
            .map_err(|e| Error::Io { path: path.display().to_string(), reason: e.to_string() })?;
        if bytes.starts_with(MAGIC) {
            return Checkpoint::from_bin(&bytes);
        }
        let bad = |reason: &str| Error::Inconsistent { reason: format!("checkpoint: {reason}") };
        let text =
            String::from_utf8(bytes).map_err(|_| bad("file is neither a v2 frame nor v1 text"))?;
        let (head, rest) =
            text.split_once('\n').ok_or_else(|| bad("missing checksum header line"))?;
        let sum = head
            .strip_prefix("fnv1a64:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("malformed checksum header"))?;
        let payload = rest.strip_suffix('\n').unwrap_or(rest);
        if fnv1a64(payload.as_bytes()) != sum {
            return Err(bad("checksum mismatch (torn or corrupted snapshot)"));
        }
        Checkpoint::from_json(payload)
    }

    /// The snapshot as one framed v2 binary message (what
    /// [`Checkpoint::save`] writes).
    pub fn to_bin(&self) -> Vec<u8> {
        let mut e = Enc::new();
        encode_direction(self.direction, &mut e);
        encode_model(self.model, &mut e);
        encode_problem(&self.root, &mut e);
        e.usize(self.beam_width);
        e.usize(self.max_labels);
        e.bool(self.use_relaxations);
        e.bool(self.prune_siblings);
        e.usize(self.depth);
        e.u32(self.frontier.len() as u32);
        for &id in &self.frontier {
            e.u32(id);
        }
        e.u32(self.goals.len() as u32);
        for &id in &self.goals {
            e.u32(id);
        }
        e.usize(self.deepest_depth);
        e.u32(self.deepest_node);
        encode_search_stats(&self.stats, &mut e);
        e.u32(self.entries.len() as u32);
        for entry in &self.entries {
            encode_problem(&entry.problem, &mut e);
            e.usize(entry.depth);
            match &entry.parent {
                None => e.u8(0),
                Some((pid, edge)) => {
                    e.u8(1);
                    e.u32(*pid);
                    encode_edge(edge, &mut e);
                }
            }
            match &entry.step {
                None => e.u8(0),
                Some((succ, derived)) => {
                    e.u8(1);
                    e.u32(*succ);
                    encode_problem(derived, &mut e);
                }
            }
            for slot in &entry.zero_round {
                e.u8(match slot {
                    None => 0,
                    Some(false) => 1,
                    Some(true) => 2,
                });
            }
        }
        e.u32(self.fps.len() as u32);
        for (fp, ids) in &self.fps {
            e.u64(*fp);
            e.u32(ids.len() as u32);
            for &id in ids {
                e.u32(id);
            }
        }
        frame(FRAME_KIND, &e.into_bytes())
    }

    /// Parses the framed v2 binary message written by [`Checkpoint::to_bin`].
    ///
    /// # Errors
    ///
    /// Frame errors (bad magic/kind, truncation, checksum mismatch) and
    /// codec errors. Structural validation against the search (id ranges,
    /// ancestry) is done at restore time, not here.
    pub fn from_bin(bytes: &[u8]) -> Result<Checkpoint> {
        let bad =
            |reason: String| Error::Parse { line: 0, reason: format!("checkpoint: {reason}") };
        let payload = unframe(bytes, FRAME_KIND)?;
        let mut d = Dec::new(payload);
        let direction = decode_direction(&mut d)?;
        let model = decode_model(&mut d)?;
        let root = decode_problem(&mut d)?;
        let beam_width = d.usize("beam_width")?;
        let max_labels = d.usize("max_labels")?;
        let use_relaxations = d.bool("use_relaxations")?;
        let prune_siblings = d.bool("prune_siblings")?;
        let depth = d.usize("depth")?;
        let ids = |what: &str, d: &mut Dec<'_>| -> Result<Vec<u32>> {
            let n = d.u32(what)? as usize;
            (0..n).map(|_| d.u32(what)).collect()
        };
        let frontier = ids("frontier", &mut d)?;
        let goals = ids("goals", &mut d)?;
        let deepest_depth = d.usize("deepest_depth")?;
        let deepest_node = d.u32("deepest_node")?;
        let stats = decode_search_stats(&mut d)?;
        let n = d.u32("entry count")? as usize;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let problem = decode_problem(&mut d)?;
            let depth = d.usize("entry depth")?;
            let parent = match d.u8("parent tag")? {
                0 => None,
                1 => Some((d.u32("parent id")?, decode_edge(&mut d)?)),
                t => return Err(bad(format!("unknown parent tag {t}"))),
            };
            let step = match d.u8("step tag")? {
                0 => None,
                1 => Some((d.u32("step succ")?, decode_problem(&mut d)?)),
                t => return Err(bad(format!("unknown step tag {t}"))),
            };
            let mut zero_round = [None, None];
            for slot in &mut zero_round {
                *slot = match d.u8("zero_round slot")? {
                    0 => None,
                    1 => Some(false),
                    2 => Some(true),
                    t => return Err(bad(format!("unknown zero_round tag {t}"))),
                };
            }
            entries.push(CkEntry { problem, depth, parent, step, zero_round });
        }
        let n = d.u32("fps count")? as usize;
        let mut fps = Vec::with_capacity(n);
        for _ in 0..n {
            let fp = d.u64("fp")?;
            let k = d.u32("fps bucket size")? as usize;
            let bucket = (0..k).map(|_| d.u32("fps id")).collect::<Result<Vec<_>>>()?;
            fps.push((fp, bucket));
        }
        d.finish()?;
        Ok(Checkpoint {
            direction,
            model,
            root,
            beam_width,
            max_labels,
            use_relaxations,
            prune_siblings,
            depth,
            frontier,
            goals,
            deepest_depth,
            deepest_node,
            stats,
            entries,
            fps,
        })
    }

    /// The snapshot as a [`Json`] value.
    pub fn json_value(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("problem", Json::Str(e.problem.to_text())),
                    ("depth", Json::Num(e.depth as u64)),
                    (
                        "zero_round",
                        Json::Arr(e.zero_round.iter().map(|&v| opt_bool_json(v)).collect()),
                    ),
                ];
                if let Some((pid, edge)) = &e.parent {
                    fields.push((
                        "parent",
                        Json::obj([
                            ("id", Json::Num(u64::from(*pid))),
                            ("edge", edge_to_json(edge)),
                        ]),
                    ));
                }
                if let Some((succ, derived)) = &e.step {
                    fields.push((
                        "step",
                        Json::obj([
                            ("succ", Json::Num(u64::from(*succ))),
                            ("derived", Json::Str(derived.to_text())),
                        ]),
                    ));
                }
                Json::obj(fields)
            })
            .collect();
        let fps = self
            .fps
            .iter()
            .map(|(fp, ids)| Json::obj([("fp", Json::Num(*fp)), ("ids", ids_json(ids))]))
            .collect();
        let stats = Json::obj([
            ("expanded", Json::Num(self.stats.expanded as u64)),
            ("step_failures", Json::Num(self.stats.step_failures as u64)),
            ("depth_reached", Json::Num(self.stats.depth_reached as u64)),
            ("worker_panics", Json::Num(self.stats.worker_panics as u64)),
            ("classes", Json::Num(self.stats.cache.classes as u64)),
            ("dedup_hits", Json::Num(self.stats.cache.dedup_hits as u64)),
            ("iso_resolutions", Json::Num(self.stats.cache.iso_resolutions as u64)),
            ("step_hits", Json::Num(self.stats.cache.step_hits as u64)),
            ("step_misses", Json::Num(self.stats.cache.step_misses as u64)),
        ]);
        Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("direction", Json::Str(direction_str(self.direction).into())),
            ("model", Json::Str(model_str(self.model).into())),
            ("root", Json::Str(self.root.to_text())),
            ("beam_width", Json::Num(self.beam_width as u64)),
            ("max_labels", Json::Num(self.max_labels as u64)),
            ("use_relaxations", Json::Bool(self.use_relaxations)),
            ("prune_siblings", Json::Bool(self.prune_siblings)),
            ("depth", Json::Num(self.depth as u64)),
            ("frontier", ids_json(&self.frontier)),
            ("goals", ids_json(&self.goals)),
            ("deepest_depth", Json::Num(self.deepest_depth as u64)),
            ("deepest_node", Json::Num(u64::from(self.deepest_node))),
            ("stats", stats),
            ("entries", Json::Arr(entries)),
            ("fps", Json::Arr(fps)),
        ])
    }

    /// Parses the JSON payload written by [`Checkpoint::json_value`].
    ///
    /// # Errors
    ///
    /// [`Error::Parse`]/[`Error::Inconsistent`] on malformed documents.
    /// Structural validation against the search (id ranges, ancestry) is
    /// done at restore time, not here.
    pub fn from_json(text: &str) -> Result<Checkpoint> {
        let bad = |reason: &str| Error::Parse { line: 0, reason: format!("checkpoint: {reason}") };
        let v = Json::parse(text).map_err(|e| Error::Parse { line: 0, reason: e })?;
        if v.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(bad("missing or unknown `schema`"));
        }
        let direction = match v.get("direction").and_then(Json::as_str) {
            Some("lower-bound") => Direction::Lower,
            Some("upper-bound") => Direction::Upper,
            _ => return Err(bad("missing or unknown `direction`")),
        };
        let model = match v.get("model").and_then(Json::as_str) {
            Some("plain-pn") => ZeroRoundModel::PlainPn,
            Some("oriented") => ZeroRoundModel::Oriented,
            _ => return Err(bad("missing or unknown `model`")),
        };
        let str_field = |key: &str| -> Result<String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("missing string `{key}`")))
        };
        let num = |j: Option<&Json>, key: &str| -> Result<u64> {
            j.and_then(Json::as_u64).ok_or_else(|| bad(&format!("missing number `{key}`")))
        };
        let boolean = |key: &str| -> Result<bool> {
            v.get(key).and_then(Json::as_bool).ok_or_else(|| bad(&format!("missing bool `{key}`")))
        };
        let node_id = |j: &Json, key: &str| -> Result<u32> {
            j.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(&format!("`{key}` entries must be node ids")))
        };
        let id_list = |key: &str| -> Result<Vec<u32>> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(&format!("missing array `{key}`")))?
                .iter()
                .map(|j| node_id(j, key))
                .collect()
        };
        let stats_obj = v.get("stats").ok_or_else(|| bad("missing `stats`"))?;
        let stat =
            |key: &str| -> Result<usize> { num(stats_obj.get(key), key).map(|n| n as usize) };
        let stats = SearchStats {
            expanded: stat("expanded")?,
            step_failures: stat("step_failures")?,
            depth_reached: stat("depth_reached")?,
            worker_panics: stat("worker_panics")?,
            cache: crate::cache::CacheStats {
                classes: stat("classes")?,
                dedup_hits: stat("dedup_hits")?,
                iso_resolutions: stat("iso_resolutions")?,
                step_hits: stat("step_hits")?,
                step_misses: stat("step_misses")?,
            },
        };
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `entries` array"))?
            .iter()
            .map(|e| {
                let problem = Problem::parse(
                    e.get("problem")
                        .and_then(Json::as_str)
                        .ok_or_else(|| bad("entry missing `problem`"))?,
                )?;
                let depth = num(e.get("depth"), "depth")? as usize;
                let zero_round_arr = e
                    .get("zero_round")
                    .and_then(Json::as_arr)
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| bad("entry needs a 2-slot `zero_round`"))?;
                let mut zero_round = [None, None];
                for (slot, j) in zero_round.iter_mut().zip(zero_round_arr) {
                    *slot = match j {
                        Json::Null => None,
                        Json::Bool(b) => Some(*b),
                        _ => return Err(bad("`zero_round` slots must be null or bool")),
                    };
                }
                let parent = match e.get("parent") {
                    None => None,
                    Some(p) => Some((
                        num(p.get("id"), "parent id").and_then(|n| {
                            u32::try_from(n).map_err(|_| bad("parent id out of range"))
                        })?,
                        edge_from_json(p.get("edge").ok_or_else(|| bad("parent needs `edge`"))?)?,
                    )),
                };
                let step = match e.get("step") {
                    None => None,
                    Some(s) => Some((
                        num(s.get("succ"), "step succ").and_then(|n| {
                            u32::try_from(n).map_err(|_| bad("step succ out of range"))
                        })?,
                        Problem::parse(
                            s.get("derived")
                                .and_then(Json::as_str)
                                .ok_or_else(|| bad("step needs `derived`"))?,
                        )?,
                    )),
                };
                Ok(CkEntry { problem, depth, parent, step, zero_round })
            })
            .collect::<Result<Vec<_>>>()?;
        let fps = v
            .get("fps")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `fps` array"))?
            .iter()
            .map(|b| {
                let fp = num(b.get("fp"), "fp")?;
                let ids = b
                    .get("ids")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("fps bucket needs `ids`"))?
                    .iter()
                    .map(|j| node_id(j, "fps ids"))
                    .collect::<Result<Vec<_>>>()?;
                Ok((fp, ids))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Checkpoint {
            direction,
            model,
            root: Problem::parse(&str_field("root")?)?,
            beam_width: num(v.get("beam_width"), "beam_width")? as usize,
            max_labels: num(v.get("max_labels"), "max_labels")? as usize,
            use_relaxations: boolean("use_relaxations")?,
            prune_siblings: boolean("prune_siblings")?,
            depth: num(v.get("depth"), "depth")? as usize,
            frontier: id_list("frontier")?,
            goals: id_list("goals")?,
            deepest_depth: num(v.get("deepest_depth"), "deepest_depth")? as usize,
            deepest_node: num(v.get("deepest_node"), "deepest_node")
                .and_then(|n| u32::try_from(n).map_err(|_| bad("deepest_node out of range")))?,
            stats,
            entries,
            fps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prob(name: &str) -> Problem {
        Problem::parse(&format!("name: {name}\nnode: O O O | O O I | O I I\nedge: O I")).unwrap()
    }

    fn sample() -> Checkpoint {
        Checkpoint {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            root: prob("root"),
            beam_width: 8,
            max_labels: 12,
            use_relaxations: true,
            prune_siblings: true,
            depth: 2,
            frontier: vec![3, 4],
            goals: vec![5],
            deepest_depth: 2,
            deepest_node: 3,
            stats: SearchStats {
                expanded: 7,
                step_failures: 1,
                depth_reached: 2,
                worker_panics: 0,
                cache: crate::cache::CacheStats {
                    classes: 6,
                    dedup_hits: 4,
                    iso_resolutions: 2,
                    step_hits: 1,
                    step_misses: 5,
                },
            },
            entries: (0..6)
                .map(|i| CkEntry {
                    problem: prob(&format!("p{i}")),
                    depth: i / 3,
                    parent: if i == 0 {
                        None
                    } else {
                        Some((
                            (i - 1) as u32,
                            if i % 2 == 0 {
                                Edge::Step
                            } else {
                                Edge::Relax {
                                    map: vec![roundelim_core::label::Label::from_index(0)],
                                }
                            },
                        ))
                    },
                    step: if i == 2 { Some((3, prob("pd"))) } else { None },
                    zero_round: [Some(i == 5), None],
                })
                .collect(),
            fps: vec![(0x1234, vec![0, 2]), (0xffff_ffff_ffff_ffff, vec![5])],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ck = sample();
        let back = Checkpoint::from_json(&ck.json_value().to_string_pretty()).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn bin_round_trip_preserves_everything() {
        let ck = sample();
        assert_eq!(Checkpoint::from_bin(&ck.to_bin()).unwrap(), ck);
    }

    #[test]
    fn save_load_round_trips_and_is_checksummed() {
        let dir = std::env::temp_dir().join(format!("roundelim-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = checkpoint_file(&dir);
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // Flip one payload byte: the checksum must catch it.
        let good = std::fs::read(&path).unwrap();
        let mut torn = good.clone();
        torn[good.len() / 2] ^= 0x01;
        std::fs::write(&path, &torn).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation is caught too.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_files_still_load() {
        // A file written by the previous release (checksummed pretty JSON
        // with problems embedded as text) loads transparently.
        let dir = std::env::temp_dir().join(format!("roundelim-ckpt-v1-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = checkpoint_file(&dir);
        let ck = sample();
        let payload = ck.json_value().to_string_pretty();
        let body = format!("fnv1a64:{:016x}\n{payload}\n", fnv1a64(payload.as_bytes()));
        std::fs::write(&path, &body).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // A corrupted v1 payload is still rejected by its checksum.
        let torn = body.replace("\"beam_width\": 8", "\"beam_width\": 9");
        std::fs::write(&path, &torn).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_is_much_smaller_than_v1() {
        let ck = sample();
        let payload = ck.json_value().to_string_pretty();
        let v1_len = payload.len() + "fnv1a64:0000000000000000\n\n".len();
        let v2_len = ck.to_bin().len();
        assert!(
            v1_len >= 2 * v2_len,
            "v2 should be at least 2x smaller: v1={v1_len} bytes, v2={v2_len} bytes"
        );
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let ck = sample();
        let payload = ck.json_value().to_string_pretty().replace(SCHEMA, "bogus-v0");
        assert!(Checkpoint::from_json(&payload).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
