//! Crash-safe search snapshots.
//!
//! A [`Checkpoint`] is a complete capture of a bound search at a **depth
//! boundary** (see [`crate::search::CheckpointConf`]): the interned
//! isomorphism classes with their memos, the first-reach parent edges, the
//! fingerprint index, the frontier/goal/deepest loop state, and the effort
//! counters. Because the search is deterministic given that state, a
//! resumed run replays exactly the suffix an uninterrupted run would have
//! executed — verdict, certificate, and counters come out bit-identical at
//! every thread count (property-tested in `tests/checkpoint.rs`).
//!
//! ## On-disk format
//!
//! A checkpoint file is a one-line FNV-1a checksum header followed by a
//! pretty-printed JSON document (schema `roundelim-checkpoint-v1`):
//!
//! ```text
//! fnv1a64:<16 hex digits>
//! {
//!   "schema": "roundelim-checkpoint-v1",
//!   ...
//! }
//! ```
//!
//! Problems are embedded in the core text format (whose `to_text`/`parse`
//! round trip is exact, alphabet order included). Files are written with
//! [`atomic_write`] — temp file, fsync, rename — so a crash mid-write (or
//! the `checkpoint-write` failpoint) leaves either the previous snapshot or
//! the new one, never a torn file; [`Checkpoint::load`] additionally
//! rejects any payload whose checksum does not match.

use crate::certificate::{edge_from_json, edge_to_json, Direction, Edge};
use crate::failpoint;
use crate::json::Json;
use crate::search::SearchStats;
use roundelim_core::error::{Error, Result};
use roundelim_core::io::atomic_write;
use roundelim_core::sequence::ZeroRoundModel;
use std::path::{Path, PathBuf};

/// Schema tag of the on-disk format.
pub const SCHEMA: &str = "roundelim-checkpoint-v1";

/// The snapshot file inside a checkpoint directory.
pub fn checkpoint_file(dir: &Path) -> PathBuf {
    dir.join("search.ckpt.json")
}

/// One interned isomorphism class: the cache entry plus its search
/// metadata, serialized side by side (they are indexed in lockstep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkEntry {
    /// Representative problem, in core text format.
    pub problem: String,
    /// Step edges on the first-reach path from the root.
    pub depth: usize,
    /// First-reach parent id and connecting edge.
    pub parent: Option<(u32, Edge)>,
    /// Memoized speedup: successor class id and the concrete derived
    /// problem (text format).
    pub step: Option<(u32, String)>,
    /// Memoized 0-round verdicts, one slot per [`ZeroRoundModel`].
    pub zero_round: [Option<bool>; 2],
}

/// A boundary snapshot of a bound search (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Which search produced this (resume rejects a direction mismatch).
    pub direction: Direction,
    /// The 0-round model of the search.
    pub model: ZeroRoundModel,
    /// The input problem, in core text format.
    pub root: String,
    /// [`crate::search::SearchOptions::beam_width`] at snapshot time.
    pub beam_width: usize,
    /// [`crate::search::SearchOptions::max_labels`] at snapshot time.
    pub max_labels: usize,
    /// [`crate::search::SearchOptions::use_relaxations`] at snapshot time.
    pub use_relaxations: bool,
    /// [`crate::search::SearchOptions::prune_siblings`] at snapshot time.
    pub prune_siblings: bool,
    /// The depth-loop counter at the boundary.
    pub depth: usize,
    /// Frontier entering `depth`.
    pub frontier: Vec<u32>,
    /// 0-round endpoints found so far.
    pub goals: Vec<u32>,
    /// Depth of the deepest non-goal chain endpoint.
    pub deepest_depth: usize,
    /// The deepest non-goal chain endpoint.
    pub deepest_node: u32,
    /// Effort counters at the boundary (cache counters included).
    pub stats: SearchStats,
    /// The interned classes, in id order.
    pub entries: Vec<CkEntry>,
    /// The cache's fingerprint index, sorted by fingerprint.
    pub fps: Vec<(u64, Vec<u32>)>,
}

/// 64-bit FNV-1a over a byte string — small, dependency-free, and more
/// than enough to catch truncation and bit rot (adversarial tampering is
/// out of scope: a checkpoint is the search's own private state).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn opt_bool_json(v: Option<bool>) -> Json {
    match v {
        None => Json::Null,
        Some(b) => Json::Bool(b),
    }
}

fn direction_str(d: Direction) -> &'static str {
    match d {
        Direction::Lower => "lower-bound",
        Direction::Upper => "upper-bound",
    }
}

fn model_str(m: ZeroRoundModel) -> &'static str {
    match m {
        ZeroRoundModel::PlainPn => "plain-pn",
        ZeroRoundModel::Oriented => "oriented",
    }
}

fn ids_json(ids: &[u32]) -> Json {
    Json::Arr(ids.iter().map(|&id| Json::Num(u64::from(id))).collect())
}

impl Checkpoint {
    /// Writes the snapshot to `path` atomically (temp file + fsync +
    /// rename), prefixed with its checksum line. Hits the
    /// `checkpoint-write` failpoint first, so a fault-injection test can
    /// crash the process at exactly this moment and assert that the
    /// previous snapshot survives intact.
    ///
    /// # Errors
    ///
    /// I/O errors from the atomic write.
    pub fn save(&self, path: &Path) -> Result<()> {
        let payload = self.json_value().to_string_pretty();
        let body = format!("fnv1a64:{:016x}\n{payload}\n", fnv1a64(payload.as_bytes()));
        failpoint::hit("checkpoint-write");
        atomic_write(path, &body)
    }

    /// Reads and validates a snapshot written by [`Checkpoint::save`].
    ///
    /// # Errors
    ///
    /// I/O errors, a checksum mismatch (torn or corrupted file), an
    /// unknown schema, or a malformed payload.
    pub fn load(path: &Path) -> Result<Checkpoint> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::Io { path: path.display().to_string(), reason: e.to_string() })?;
        let bad = |reason: &str| Error::Inconsistent { reason: format!("checkpoint: {reason}") };
        let (head, rest) =
            text.split_once('\n').ok_or_else(|| bad("missing checksum header line"))?;
        let sum = head
            .strip_prefix("fnv1a64:")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| bad("malformed checksum header"))?;
        let payload = rest.strip_suffix('\n').unwrap_or(rest);
        if fnv1a64(payload.as_bytes()) != sum {
            return Err(bad("checksum mismatch (torn or corrupted snapshot)"));
        }
        Checkpoint::from_json(payload)
    }

    /// The snapshot as a [`Json`] value.
    pub fn json_value(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut fields = vec![
                    ("problem", Json::Str(e.problem.clone())),
                    ("depth", Json::Num(e.depth as u64)),
                    (
                        "zero_round",
                        Json::Arr(e.zero_round.iter().map(|&v| opt_bool_json(v)).collect()),
                    ),
                ];
                if let Some((pid, edge)) = &e.parent {
                    fields.push((
                        "parent",
                        Json::obj([
                            ("id", Json::Num(u64::from(*pid))),
                            ("edge", edge_to_json(edge)),
                        ]),
                    ));
                }
                if let Some((succ, derived)) = &e.step {
                    fields.push((
                        "step",
                        Json::obj([
                            ("succ", Json::Num(u64::from(*succ))),
                            ("derived", Json::Str(derived.clone())),
                        ]),
                    ));
                }
                Json::obj(fields)
            })
            .collect();
        let fps = self
            .fps
            .iter()
            .map(|(fp, ids)| Json::obj([("fp", Json::Num(*fp)), ("ids", ids_json(ids))]))
            .collect();
        let stats = Json::obj([
            ("expanded", Json::Num(self.stats.expanded as u64)),
            ("step_failures", Json::Num(self.stats.step_failures as u64)),
            ("depth_reached", Json::Num(self.stats.depth_reached as u64)),
            ("worker_panics", Json::Num(self.stats.worker_panics as u64)),
            ("classes", Json::Num(self.stats.cache.classes as u64)),
            ("dedup_hits", Json::Num(self.stats.cache.dedup_hits as u64)),
            ("iso_resolutions", Json::Num(self.stats.cache.iso_resolutions as u64)),
            ("step_hits", Json::Num(self.stats.cache.step_hits as u64)),
            ("step_misses", Json::Num(self.stats.cache.step_misses as u64)),
        ]);
        Json::obj([
            ("schema", Json::Str(SCHEMA.into())),
            ("direction", Json::Str(direction_str(self.direction).into())),
            ("model", Json::Str(model_str(self.model).into())),
            ("root", Json::Str(self.root.clone())),
            ("beam_width", Json::Num(self.beam_width as u64)),
            ("max_labels", Json::Num(self.max_labels as u64)),
            ("use_relaxations", Json::Bool(self.use_relaxations)),
            ("prune_siblings", Json::Bool(self.prune_siblings)),
            ("depth", Json::Num(self.depth as u64)),
            ("frontier", ids_json(&self.frontier)),
            ("goals", ids_json(&self.goals)),
            ("deepest_depth", Json::Num(self.deepest_depth as u64)),
            ("deepest_node", Json::Num(u64::from(self.deepest_node))),
            ("stats", stats),
            ("entries", Json::Arr(entries)),
            ("fps", Json::Arr(fps)),
        ])
    }

    /// Parses the JSON payload written by [`Checkpoint::json_value`].
    ///
    /// # Errors
    ///
    /// [`Error::Parse`]/[`Error::Inconsistent`] on malformed documents.
    /// Structural validation against the search (id ranges, ancestry) is
    /// done at restore time, not here.
    pub fn from_json(text: &str) -> Result<Checkpoint> {
        let bad = |reason: &str| Error::Parse { line: 0, reason: format!("checkpoint: {reason}") };
        let v = Json::parse(text).map_err(|e| Error::Parse { line: 0, reason: e })?;
        if v.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(bad("missing or unknown `schema`"));
        }
        let direction = match v.get("direction").and_then(Json::as_str) {
            Some("lower-bound") => Direction::Lower,
            Some("upper-bound") => Direction::Upper,
            _ => return Err(bad("missing or unknown `direction`")),
        };
        let model = match v.get("model").and_then(Json::as_str) {
            Some("plain-pn") => ZeroRoundModel::PlainPn,
            Some("oriented") => ZeroRoundModel::Oriented,
            _ => return Err(bad("missing or unknown `model`")),
        };
        let str_field = |key: &str| -> Result<String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| bad(&format!("missing string `{key}`")))
        };
        let num = |j: Option<&Json>, key: &str| -> Result<u64> {
            j.and_then(Json::as_u64).ok_or_else(|| bad(&format!("missing number `{key}`")))
        };
        let boolean = |key: &str| -> Result<bool> {
            v.get(key).and_then(Json::as_bool).ok_or_else(|| bad(&format!("missing bool `{key}`")))
        };
        let node_id = |j: &Json, key: &str| -> Result<u32> {
            j.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(&format!("`{key}` entries must be node ids")))
        };
        let id_list = |key: &str| -> Result<Vec<u32>> {
            v.get(key)
                .and_then(Json::as_arr)
                .ok_or_else(|| bad(&format!("missing array `{key}`")))?
                .iter()
                .map(|j| node_id(j, key))
                .collect()
        };
        let stats_obj = v.get("stats").ok_or_else(|| bad("missing `stats`"))?;
        let stat =
            |key: &str| -> Result<usize> { num(stats_obj.get(key), key).map(|n| n as usize) };
        let stats = SearchStats {
            expanded: stat("expanded")?,
            step_failures: stat("step_failures")?,
            depth_reached: stat("depth_reached")?,
            worker_panics: stat("worker_panics")?,
            cache: crate::cache::CacheStats {
                classes: stat("classes")?,
                dedup_hits: stat("dedup_hits")?,
                iso_resolutions: stat("iso_resolutions")?,
                step_hits: stat("step_hits")?,
                step_misses: stat("step_misses")?,
            },
        };
        let entries = v
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `entries` array"))?
            .iter()
            .map(|e| {
                let problem = e
                    .get("problem")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("entry missing `problem`"))?
                    .to_owned();
                let depth = num(e.get("depth"), "depth")? as usize;
                let zero_round_arr = e
                    .get("zero_round")
                    .and_then(Json::as_arr)
                    .filter(|a| a.len() == 2)
                    .ok_or_else(|| bad("entry needs a 2-slot `zero_round`"))?;
                let mut zero_round = [None, None];
                for (slot, j) in zero_round.iter_mut().zip(zero_round_arr) {
                    *slot = match j {
                        Json::Null => None,
                        Json::Bool(b) => Some(*b),
                        _ => return Err(bad("`zero_round` slots must be null or bool")),
                    };
                }
                let parent = match e.get("parent") {
                    None => None,
                    Some(p) => Some((
                        num(p.get("id"), "parent id").and_then(|n| {
                            u32::try_from(n).map_err(|_| bad("parent id out of range"))
                        })?,
                        edge_from_json(p.get("edge").ok_or_else(|| bad("parent needs `edge`"))?)?,
                    )),
                };
                let step = match e.get("step") {
                    None => None,
                    Some(s) => Some((
                        num(s.get("succ"), "step succ").and_then(|n| {
                            u32::try_from(n).map_err(|_| bad("step succ out of range"))
                        })?,
                        s.get("derived")
                            .and_then(Json::as_str)
                            .ok_or_else(|| bad("step needs `derived`"))?
                            .to_owned(),
                    )),
                };
                Ok(CkEntry { problem, depth, parent, step, zero_round })
            })
            .collect::<Result<Vec<_>>>()?;
        let fps = v
            .get("fps")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("missing `fps` array"))?
            .iter()
            .map(|b| {
                let fp = num(b.get("fp"), "fp")?;
                let ids = b
                    .get("ids")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("fps bucket needs `ids`"))?
                    .iter()
                    .map(|j| node_id(j, "fps ids"))
                    .collect::<Result<Vec<_>>>()?;
                Ok((fp, ids))
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Checkpoint {
            direction,
            model,
            root: str_field("root")?,
            beam_width: num(v.get("beam_width"), "beam_width")? as usize,
            max_labels: num(v.get("max_labels"), "max_labels")? as usize,
            use_relaxations: boolean("use_relaxations")?,
            prune_siblings: boolean("prune_siblings")?,
            depth: num(v.get("depth"), "depth")? as usize,
            frontier: id_list("frontier")?,
            goals: id_list("goals")?,
            deepest_depth: num(v.get("deepest_depth"), "deepest_depth")? as usize,
            deepest_node: num(v.get("deepest_node"), "deepest_node")
                .and_then(|n| u32::try_from(n).map_err(|_| bad("deepest_node out of range")))?,
            stats,
            entries,
            fps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            direction: Direction::Lower,
            model: ZeroRoundModel::Oriented,
            root: "name: sc\nlabels: 1 0\nnode: 1 0 0\nedge: 0 0 | 0 1\n".into(),
            beam_width: 8,
            max_labels: 12,
            use_relaxations: true,
            prune_siblings: true,
            depth: 2,
            frontier: vec![3, 4],
            goals: vec![5],
            deepest_depth: 2,
            deepest_node: 3,
            stats: SearchStats {
                expanded: 7,
                step_failures: 1,
                depth_reached: 2,
                worker_panics: 0,
                cache: crate::cache::CacheStats {
                    classes: 6,
                    dedup_hits: 4,
                    iso_resolutions: 2,
                    step_hits: 1,
                    step_misses: 5,
                },
            },
            entries: (0..6)
                .map(|i| CkEntry {
                    problem: format!("p{i}"),
                    depth: i / 3,
                    parent: if i == 0 {
                        None
                    } else {
                        Some((
                            (i - 1) as u32,
                            if i % 2 == 0 {
                                Edge::Step
                            } else {
                                Edge::Relax {
                                    map: vec![roundelim_core::label::Label::from_index(0)],
                                }
                            },
                        ))
                    },
                    step: if i == 2 { Some((3, "pd".into())) } else { None },
                    zero_round: [Some(i == 5), None],
                })
                .collect(),
            fps: vec![(0x1234, vec![0, 2]), (0xffff_ffff_ffff_ffff, vec![5])],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let ck = sample();
        let back = Checkpoint::from_json(&ck.json_value().to_string_pretty()).unwrap();
        assert_eq!(ck, back);
    }

    #[test]
    fn save_load_round_trips_and_is_checksummed() {
        let dir = std::env::temp_dir().join(format!("roundelim-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = checkpoint_file(&dir);
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(Checkpoint::load(&path).unwrap(), ck);
        // Flip one payload byte: the checksum must catch it.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("\"beam_width\": 8", "\"beam_width\": 9");
        std::fs::write(&path, &text).unwrap();
        let err = Checkpoint::load(&path).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation is caught too.
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let ck = sample();
        let payload = ck.json_value().to_string_pretty().replace(SCHEMA, "bogus-v0");
        assert!(Checkpoint::from_json(&payload).is_err());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
