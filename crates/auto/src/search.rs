//! The automated bound search: best-first beam exploration of the graph
//! whose nodes are problems (deduplicated by canonical form) and whose
//! edges are speedup steps and candidate relaxations/hardenings.
//!
//! ## Lower bounds ([`autolb`])
//!
//! From the input problem, the search interleaves [`full_step`] edges with
//! searched relaxations ([`crate::moves::relax_moves`]), exactly the §2.1
//! recipe but with the relaxations *discovered* instead of hand-supplied.
//! It stops on
//!
//! * a **cycle up to isomorphism** containing at least one step edge — the
//!   §4.4 fixed-point argument, certifying an unbounded lower bound;
//! * a **0-round problem** at step depth `d` — certifying lower bound `d`;
//! * **budget exhaustion** — certifying the depth reached.
//!
//! ## Upper bounds ([`autoub`])
//!
//! The dual hardening direction (§4.5): edges are speedup steps and
//! searched hardenings ([`crate::moves::harden_moves`]); reaching a 0-round
//! problem after `d` step edges certifies upper bound `d` on the
//! Theorem-1/2 regime.
//!
//! Every verdict is emitted as a [`Certificate`] and independently
//! replayed by [`Certificate::verify`] before being returned, so a search
//! bug cannot produce a wrong bound.
//!
//! ## Parallelism and determinism
//!
//! Frontier expansion fans out across cores with [`std::thread::scope`]
//! (the PR 2 merge-closure pattern): the *pure* per-node work — speedup
//! steps, candidate generation, canonicalization — runs on workers in
//! contiguous chunks, and results are folded into the cache sequentially
//! in item order. The outcome is identical for every thread count; the
//! `threads` option (0 = the `ROUNDELIM_THREADS` variable, else all
//! cores) only sets how fast it arrives.

use crate::cache::{
    cache_key, fingerprint, full_step_cached, CacheKey, CacheStats, CanonCache, NodeId,
};
use crate::certificate::{CertVerdict, Certificate, Direction, Edge};
use crate::moves::{harden_moves, harden_moves_pruned, relax_moves, relax_moves_pruned};
use crate::score::score;
use roundelim_core::error::Result;
use roundelim_core::iso::isomorphism;
use roundelim_core::problem::Problem;
use roundelim_core::profile::{span, Stage};
use roundelim_core::sequence::ZeroRoundModel;

/// Tuning knobs for [`autolb`] / [`autoub`].
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Speedup-step depth budget.
    pub max_steps: usize,
    /// Nodes stepped per depth level (and kept per relaxation wave).
    pub beam_width: usize,
    /// Whether to search relaxations/hardenings at all; with `false`,
    /// [`autolb`] degenerates to the plain iterated speedup.
    pub use_relaxations: bool,
    /// Problems with more labels than this are not enqueued (the speedup
    /// can grow alphabets doubly exponentially; relaxations are how the
    /// search gets back under the limit).
    pub max_labels: usize,
    /// Worker threads; 0 resolves `ROUNDELIM_THREADS` / all cores.
    pub threads: usize,
    /// The 0-round model for goal checks.
    pub model: ZeroRoundModel,
    /// Skip sibling move candidates that a verified constraint-row
    /// automorphism maps onto an earlier sibling
    /// ([`crate::moves::relax_moves_pruned`]). The searched class set,
    /// verdicts, and certificates are identical with or without pruning
    /// (property-tested); `false` exists for that cross-check and costs
    /// the duplicated canonicalization work.
    pub prune_siblings: bool,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            max_steps: 12,
            beam_width: 8,
            use_relaxations: true,
            max_labels: 12,
            threads: 0,
            model: ZeroRoundModel::Oriented,
            prune_siblings: true,
        }
    }
}

/// The search's conclusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A speedup cycle up to isomorphism: the lower bound exceeds every `t`
    /// admitting a t-independent girth-(2t+2) class (e.g. Ω(log n) for
    /// sinkless orientation).
    Unbounded,
    /// A certified lower bound of `rounds` rounds.
    LowerBound {
        /// The certified bound.
        rounds: usize,
    },
    /// A certified upper bound of `rounds` rounds on the Theorem-1/2 regime.
    UpperBound {
        /// The certified bound.
        rounds: usize,
    },
    /// The budget was exhausted without a certifiable verdict.
    Inconclusive,
}

/// Search effort counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SearchStats {
    /// Nodes whose speedup step was taken.
    pub expanded: usize,
    /// Speedup steps that died on a resource limit (alphabet overflow);
    /// those paths end there, the search continues elsewhere.
    pub step_failures: usize,
    /// Step depth reached.
    pub depth_reached: usize,
    /// Canonical-form cache counters.
    pub cache: CacheStats,
}

/// The result of a search: verdict, replayable certificate (already
/// verified), and effort counters.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The conclusion.
    pub verdict: Verdict,
    /// The certificate backing the verdict (`None` only for
    /// [`Verdict::Inconclusive`]).
    pub certificate: Option<Certificate>,
    /// Effort counters.
    pub stats: SearchStats,
}

/// Resolves the worker-thread count: explicit option, else the
/// `ROUNDELIM_THREADS` environment variable, else all available cores.
fn resolve_threads(opt: usize) -> usize {
    if opt > 0 {
        return opt;
    }
    std::env::var("ROUNDELIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Maps `f` over contiguous chunks of `items` on scoped worker threads,
/// returning per-item results in item order. Results are bit-identical for
/// every thread count: only the schedule changes.
fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(&f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .skip(1)
            .map(|part| s.spawn(|| part.iter().map(&f).collect::<Vec<R>>()))
            .collect();
        let mut out: Vec<R> = items[..chunk.min(items.len())].iter().map(&f).collect();
        for h in handles {
            out.extend(h.join().expect("search worker panicked"));
        }
        out
    })
}

/// Per-node search bookkeeping, indexed by [`NodeId`] in lockstep with the
/// cache's class store.
struct Meta {
    /// Step edges on the first-reach path from the root.
    depth: usize,
    /// First-reach parent and the edge that produced this node's
    /// representative from the parent's representative (verbatim — this is
    /// what makes certificate chains replay exactly).
    parent: Option<(NodeId, Edge)>,
}

struct Search {
    cache: CanonCache,
    meta: Vec<Meta>,
    opts: SearchOptions,
    threads: usize,
    stats: SearchStats,
}

/// A cycle hit: expanding `from` with `edge` derived `problem`, whose class
/// is the ancestor `back_to`.
struct CycleHit {
    from: NodeId,
    edge: Edge,
    problem: Problem,
    back_to: NodeId,
}

impl Search {
    fn new(opts: &SearchOptions) -> Search {
        Search {
            cache: CanonCache::new(),
            meta: Vec::new(),
            opts: opts.clone(),
            threads: resolve_threads(opts.threads),
            stats: SearchStats::default(),
        }
    }

    fn intern(
        &mut self,
        p: Problem,
        key: CacheKey,
        parent: Option<(NodeId, Edge)>,
        depth: usize,
    ) -> (NodeId, bool) {
        let (id, back) = self.cache.intern_keyed(key, p);
        let new = back.is_none();
        if new {
            self.meta.push(Meta { depth, parent });
            debug_assert_eq!(self.meta.len(), self.cache.len());
        }
        (id, new)
    }

    /// Interns through the cache's fingerprint index (no canonical key on
    /// dedup); hands the problem back on dedup, exactly like
    /// [`CanonCache::intern_fingerprinted`].
    fn intern_fp(
        &mut self,
        p: Problem,
        fp: u64,
        parent: Option<(NodeId, Edge)>,
        depth: usize,
    ) -> (NodeId, Option<Problem>) {
        let (id, back) = self.cache.intern_fingerprinted(fp, p);
        if back.is_none() {
            self.meta.push(Meta { depth, parent });
            debug_assert_eq!(self.meta.len(), self.cache.len());
        }
        (id, back)
    }

    /// Problems above this label count are not interned at all: they are
    /// too symmetric to canonicalize affordably and too far from the beam
    /// to ever be relaxed back under [`SearchOptions::max_labels`] by
    /// pairwise merges.
    fn intern_cap(&self) -> usize {
        (4 * self.opts.max_labels).max(24)
    }

    fn zero(&mut self, id: NodeId) -> bool {
        let model = self.opts.model;
        self.cache.is_zero_round(id, model)
    }

    fn is_ancestor(&self, anc: NodeId, mut n: NodeId) -> bool {
        loop {
            if n == anc {
                return true;
            }
            match self.meta[n.index()].parent {
                Some((p, _)) => n = p,
                None => return false,
            }
        }
    }

    /// The first-reach chain root → `n`: problems and connecting edges.
    fn chain_to(&self, n: NodeId) -> (Vec<Problem>, Vec<Edge>, Vec<NodeId>) {
        let mut ids = vec![n];
        let mut edges = Vec::new();
        let mut cur = n;
        while let Some((p, e)) = &self.meta[cur.index()].parent {
            ids.push(*p);
            edges.push(e.clone());
            cur = *p;
        }
        ids.reverse();
        edges.reverse();
        let problems = ids.iter().map(|&id| self.cache.problem(id).clone()).collect();
        (problems, edges, ids)
    }

    /// Orders `pool` by (score, id) and truncates to the beam width.
    fn select_beam(&self, pool: &mut Vec<NodeId>) {
        pool.sort_by_key(|&id| (score(self.cache.problem(id)), id));
        pool.truncate(self.opts.beam_width);
    }

    /// The beam actually stepped: best nodes whose alphabet fits
    /// [`SearchOptions::max_labels`] (oversized pool members only serve as
    /// relaxation sources — stepping them would blow the alphabet up
    /// further).
    fn steppable_beam(&self, pool: &[NodeId]) -> Vec<NodeId> {
        let mut beam: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&id| self.cache.problem(id).alphabet().len() <= self.opts.max_labels)
            .collect();
        self.select_beam(&mut beam);
        beam
    }

    /// Expands relaxation (or hardening) moves from `pool` to a fixed
    /// point, interning new nodes at `depth`. New 0-round nodes are pushed
    /// to `goals` and not expanded further. Returns a cycle hit as soon as
    /// one closes (lower-bound direction only; hardening chains cannot
    /// cycle usefully and `detect_cycles` is false there).
    fn sideways_closure(
        &mut self,
        pool: &mut Vec<NodeId>,
        depth: usize,
        direction: Direction,
        detect_cycles: bool,
        goals: &mut Vec<NodeId>,
    ) -> Option<CycleHit> {
        let _sp = span(Stage::RelaxClosure);
        let prune = self.opts.prune_siblings;
        let mut wave: Vec<NodeId> = pool.clone();
        while !wave.is_empty() {
            // Generate candidates (and their invariant fingerprints) in
            // parallel; the per-candidate work is pure. Canonical keys are
            // *not* computed here: the fold interns through the fingerprint
            // index, which resolves re-derived classes with one short
            // isomorphism check and computes a canonical key only for
            // genuinely new classes.
            let sources: Vec<(NodeId, Problem)> =
                wave.iter().map(|&n| (n, self.cache.problem(n).clone())).collect();
            let cap = self.intern_cap();
            // Oversized sources (above the step bound) only exist to be
            // relaxed back under it; their quadratic pairwise-merge fan-out
            // is restricted to ⊆-comparable edge rows (see
            // `relax_moves_pruned`).
            let max_labels = self.opts.max_labels;
            let cands: Vec<Vec<(Vec<roundelim_core::label::Label>, Problem, u64)>> =
                par_map(&sources, self.threads, |(_, p)| {
                    let moves: Vec<_> = match (direction, prune) {
                        (Direction::Lower, true) => {
                            let subset_only = p.alphabet().len() > max_labels;
                            relax_moves_pruned(p, subset_only)
                                .into_iter()
                                .map(|m| (m.map, m.result))
                                .collect()
                        }
                        (Direction::Lower, false) => {
                            relax_moves(p).into_iter().map(|m| (m.map, m.result)).collect()
                        }
                        (Direction::Upper, true) => {
                            harden_moves_pruned(p).into_iter().map(|m| (m.map, m.result)).collect()
                        }
                        (Direction::Upper, false) => {
                            harden_moves(p).into_iter().map(|m| (m.map, m.result)).collect()
                        }
                    };
                    moves
                        .into_iter()
                        .filter(|(_, r)| r.alphabet().len() <= cap)
                        .map(|(map, r)| {
                            let fp = fingerprint(&r);
                            (map, r, fp)
                        })
                        .collect()
                });
            // Fold into the cache sequentially, in item order.
            let mut next_wave = Vec::new();
            for ((n, _), list) in sources.iter().zip(cands) {
                for (map, result, fp) in list {
                    let edge = match direction {
                        Direction::Lower => Edge::Relax { map },
                        Direction::Upper => Edge::Harden { map },
                    };
                    let (c, returned) = self.intern_fp(result, fp, Some((*n, edge.clone())), depth);
                    match returned {
                        None => {
                            // A new class: goal-check it, else it joins the
                            // pool and the next wave.
                            if self.zero(c) {
                                goals.push(c);
                            } else {
                                pool.push(c);
                                next_wave.push(c);
                            }
                        }
                        Some(result) => {
                            if detect_cycles
                                && self.is_ancestor(c, *n)
                                && self.meta[n.index()].depth > self.meta[c.index()].depth
                            {
                                // A sideways edge closing onto an ancestor
                                // with at least one step edge in between.
                                return Some(CycleHit {
                                    from: *n,
                                    edge,
                                    problem: result,
                                    back_to: c,
                                });
                            }
                        }
                    }
                }
            }
            // Keep the wave (and the per-depth pool) bounded: relaxation
            // chains strictly shrink the alphabet, so this terminates, but
            // without a beam the partition lattice is explored whole.
            self.select_beam(&mut next_wave);
            wave = next_wave;
        }
        None
    }

    /// Takes the speedup step of every beam node in parallel, interning
    /// children at `depth + 1`. Steps that die on a resource limit
    /// (alphabet overflow) or whose child exceeds the intern cap are dead
    /// ends: the path stops, the search continues. Returns the new
    /// frontier and a cycle hit if one closed.
    fn step_beam(
        &mut self,
        beam: &[NodeId],
        depth: usize,
        detect_cycles: bool,
        goals: &mut Vec<NodeId>,
    ) -> (Vec<NodeId>, Option<CycleHit>) {
        // Memoized steps resolve immediately (successor id only — the
        // derived problem is fetched just on the cycle-hit path); the rest
        // compute in parallel.
        let mut todo: Vec<(NodeId, Problem)> = Vec::new();
        let mut resolved: Vec<(NodeId, Option<NodeId>)> = Vec::new();
        for &n in beam {
            match self.cache.step_succ(n) {
                Some(succ) => resolved.push((n, Some(succ))),
                None => {
                    todo.push((n, self.cache.problem(n).clone()));
                    resolved.push((n, None));
                }
            }
        }
        let cap = self.intern_cap();
        let computed: Vec<Option<(Problem, CacheKey)>> = par_map(&todo, self.threads, |(_, p)| {
            // The process-wide memo makes repeated searches (sweeps, bench
            // iterations) pay for each distinct speedup once.
            let derived = full_step_cached(p).ok()?;
            if derived.alphabet().len() > cap
                || derived.node().is_empty()
                || derived.edge().is_empty()
            {
                // Over-cap children cannot be canonicalized affordably; an
                // empty constraint means the derived problem is unsolvable
                // outright (and the text format cannot express it). Both
                // end the path here.
                return None;
            }
            let _sp = span(Stage::Canon);
            let key = cache_key(&derived);
            Some((derived, key))
        });
        let mut computed_iter = computed.into_iter();
        let mut frontier = Vec::new();
        let mut hit = None;
        for (n, memo) in resolved {
            self.stats.expanded += 1;
            let (child, new) = match memo {
                Some(succ) => (succ, false),
                None => {
                    let Some((derived, key)) =
                        computed_iter.next().expect("one result per todo item")
                    else {
                        self.stats.step_failures += 1;
                        continue; // dead end: overflow or over-cap child
                    };
                    let (succ, new) = self.cache.record_step(n, derived, key);
                    if new {
                        self.meta.push(Meta { depth: depth + 1, parent: Some((n, Edge::Step)) });
                        debug_assert_eq!(self.meta.len(), self.cache.len());
                    }
                    (succ, new)
                }
            };
            if hit.is_some() {
                continue; // a cycle already closed; drain deterministically
            }
            if new {
                if self.zero(child) {
                    goals.push(child);
                } else {
                    // Oversized children stay in the frontier as
                    // relaxation sources; `steppable_beam` keeps them away
                    // from the next step stage.
                    frontier.push(child);
                }
            } else if detect_cycles && self.is_ancestor(child, n) {
                let problem =
                    self.cache.step_derived(n).expect("memo recorded for this node").clone();
                hit = Some(CycleHit { from: n, edge: Edge::Step, problem, back_to: child });
            }
            // A dedup into a non-ancestor class is exhausted ground: that
            // class was (or will be) expanded from its first-reach path.
        }
        (frontier, hit)
    }

    /// Builds and **verifies** the unbounded certificate for a cycle hit.
    fn unbounded_certificate(&self, hit: &CycleHit) -> Certificate {
        let (mut problems, mut edges, ids) = self.chain_to(hit.from);
        let cycle_start = ids
            .iter()
            .position(|&id| id == hit.back_to)
            .expect("cycle target is an ancestor of the closing node");
        edges.push(hit.edge.clone());
        problems.push(hit.problem.clone());
        let iso_map = isomorphism(&hit.problem, &problems[cycle_start])
            .expect("same canonical key implies isomorphic");
        Certificate {
            direction: Direction::Lower,
            model: self.opts.model,
            problems,
            edges,
            verdict: CertVerdict::Unbounded { cycle_start, iso_map },
        }
    }

    fn outcome(&self, verdict: Verdict, certificate: Option<Certificate>) -> Outcome {
        let mut stats = self.stats;
        stats.cache = self.cache.stats;
        Outcome { verdict, certificate, stats }
    }
}

/// Searches for a lower bound on `p` (see module docs). The returned
/// certificate has already replayed green under
/// [`Certificate::verify`].
///
/// # Errors
///
/// Propagates engine errors (e.g. alphabet overflow during a speedup) and
/// rejects internally inconsistent certificates (a search bug, surfaced
/// rather than silently mis-reported).
pub fn autolb(p: &Problem, opts: &SearchOptions) -> Result<Outcome> {
    let mut s = Search::new(opts);
    let key = cache_key(p);
    let (root, _) = s.intern(p.clone(), key, None, 0);
    let mut goals: Vec<NodeId> = Vec::new(); // 0-round endpoints
    if s.zero(root) {
        let cert = Certificate {
            direction: Direction::Lower,
            model: opts.model,
            problems: vec![p.clone()],
            edges: vec![],
            verdict: CertVerdict::LowerBound { rounds: 0 },
        };
        return finish(s.outcome(Verdict::LowerBound { rounds: 0 }, Some(cert)));
    }
    let mut frontier = vec![root];
    let mut deepest: (usize, NodeId) = (0, root);
    for depth in 0..opts.max_steps {
        let mut pool = frontier.clone();
        if opts.use_relaxations {
            if let Some(hit) =
                s.sideways_closure(&mut pool, depth, Direction::Lower, true, &mut goals)
            {
                let cert = s.unbounded_certificate(&hit);
                return finish(s.outcome(Verdict::Unbounded, Some(cert)));
            }
        }
        let beam = s.steppable_beam(&pool);
        let (next, hit) = s.step_beam(&beam, depth, true, &mut goals);
        s.stats.depth_reached = depth + 1;
        if let Some(hit) = hit {
            let cert = s.unbounded_certificate(&hit);
            return finish(s.outcome(Verdict::Unbounded, Some(cert)));
        }
        if next.is_empty() {
            break;
        }
        deepest = (depth + 1, next[0]);
        frontier = next;
    }
    // Budget exhausted (or the graph closed without a path cycle): certify
    // the best endpoint seen — a 0-round endpoint at maximal step depth,
    // or the deepest non-0-round chain.
    let best_goal = goals.iter().map(|&g| (s.meta[g.index()].depth, g)).max_by_key(|&(d, _)| d);
    let (rounds, endpoint) = match best_goal {
        Some((d, g)) if d >= deepest.0 => (d, g),
        _ => deepest,
    };
    let (problems, edges, _) = s.chain_to(endpoint);
    let cert = Certificate {
        direction: Direction::Lower,
        model: opts.model,
        problems,
        edges,
        verdict: CertVerdict::LowerBound { rounds },
    };
    finish(s.outcome(Verdict::LowerBound { rounds }, Some(cert)))
}

/// Searches for an upper-bound derivation for `p` (see module docs). The
/// returned certificate has already replayed green under
/// [`Certificate::verify`].
///
/// # Errors
///
/// Propagates engine errors; rejects internally inconsistent certificates.
pub fn autoub(p: &Problem, opts: &SearchOptions) -> Result<Outcome> {
    let mut s = Search::new(opts);
    let key = cache_key(p);
    let (root, _) = s.intern(p.clone(), key, None, 0);
    let mut goals: Vec<NodeId> = Vec::new();
    if s.zero(root) {
        goals.push(root);
    }
    let mut frontier = vec![root];
    let mut depth = 0;
    while goals.is_empty() && depth < opts.max_steps && !frontier.is_empty() {
        let mut pool = frontier.clone();
        if opts.use_relaxations {
            s.sideways_closure(&mut pool, depth, Direction::Upper, false, &mut goals);
        }
        if !goals.is_empty() {
            break; // a hardening reached a 0-round problem at this depth
        }
        let beam = s.steppable_beam(&pool);
        let (next, _) = s.step_beam(&beam, depth, false, &mut goals);
        depth += 1;
        s.stats.depth_reached = depth;
        frontier = next;
    }
    // The shallowest goal wins (BFS by step depth ⇒ the first recorded
    // goal is at the minimal step depth reached).
    let Some(&goal) = goals.first() else {
        return Ok(s.outcome(Verdict::Inconclusive, None));
    };
    let rounds = s.meta[goal.index()].depth;
    let (problems, edges, _) = s.chain_to(goal);
    let cert = Certificate {
        direction: Direction::Upper,
        model: opts.model,
        problems,
        edges,
        verdict: CertVerdict::UpperBound { rounds },
    };
    finish(s.outcome(Verdict::UpperBound { rounds }, Some(cert)))
}

/// Replays the outcome's certificate before handing it to the caller: the
/// search never returns a bound its own verifier rejects.
fn finish(outcome: Outcome) -> Result<Outcome> {
    if let Some(cert) = &outcome.certificate {
        cert.verify().map_err(|e| roundelim_core::error::Error::Inconsistent {
            reason: format!("search produced an invalid certificate (bug): {e}"),
        })?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn so3() -> Problem {
        Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap()
    }

    #[test]
    fn sinkless_orientation_is_unbounded_without_hand_relaxations() {
        let out = autolb(&so3(), &SearchOptions::default()).unwrap();
        assert_eq!(out.verdict, Verdict::Unbounded);
        let cert = out.certificate.unwrap();
        cert.verify().unwrap();
        assert!(cert.steps() >= 1);
    }

    #[test]
    fn plain_speedup_mode_finds_the_sinkless_cycle_too() {
        let opts = SearchOptions { use_relaxations: false, ..SearchOptions::default() };
        let out = autolb(&so3(), &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Unbounded);
    }

    #[test]
    fn trivial_problem_is_zero_rounds_both_directions() {
        let t = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let lb = autolb(&t, &SearchOptions::default()).unwrap();
        assert_eq!(lb.verdict, Verdict::LowerBound { rounds: 0 });
        let ub = autoub(&t, &SearchOptions::default()).unwrap();
        assert_eq!(ub.verdict, Verdict::UpperBound { rounds: 0 });
        ub.certificate.unwrap().verify().unwrap();
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        let base =
            autolb(&so3(), &SearchOptions { threads: 1, ..SearchOptions::default() }).unwrap();
        for threads in [2, 3, 8] {
            let out =
                autolb(&so3(), &SearchOptions { threads, ..SearchOptions::default() }).unwrap();
            assert_eq!(out.verdict, base.verdict, "threads={threads}");
            assert_eq!(out.certificate, base.certificate, "threads={threads}");
        }
    }

    #[test]
    fn one_round_problem_gets_upper_bound_one() {
        // Not 0-round solvable (no node config is edge-self-compatible in
        // any orientation split), but its full step is: upper bound 1.
        let p = Problem::parse("name: ub1\nnode: A B | A C\nedge: A A | A C | B B").unwrap();
        let out = autoub(&p, &SearchOptions::default()).unwrap();
        assert_eq!(out.verdict, Verdict::UpperBound { rounds: 1 });
        let cert = out.certificate.unwrap();
        assert_eq!(cert.steps(), 1);
        cert.verify().unwrap();
    }

    #[test]
    fn maximal_matching_needs_a_searched_relaxation() {
        // Maximal matching at Δ=3: the plain iterated speedup dies on
        // description growth after 2 steps, but with searched label merges
        // the chain reaches a third non-0-round step — a strictly better
        // bound that *requires* a relax edge in its certificate.
        let mm = roundelim_problems::matching::maximal_matching(3).unwrap();
        let opts = SearchOptions {
            max_steps: 6,
            beam_width: 6,
            max_labels: 10,
            ..SearchOptions::default()
        };
        let with = autolb(&mm, &opts).unwrap();
        assert_eq!(with.verdict, Verdict::LowerBound { rounds: 3 });
        let cert = with.certificate.unwrap();
        assert!(
            cert.edges.iter().any(|e| matches!(e, Edge::Relax { .. })),
            "the depth-3 chain must use a searched relaxation"
        );
        let without = autolb(&mm, &SearchOptions { use_relaxations: false, ..opts }).unwrap();
        assert_eq!(without.verdict, Verdict::LowerBound { rounds: 2 });
    }

    #[test]
    fn sibling_pruning_preserves_the_search_exactly() {
        // With every explored problem inside the step bound (no oversized
        // sources, so the edge-row subset restriction never fires), the
        // pruned search must intern the same canonical class set and emit
        // the same verdict and certificate as the unpruned search — the
        // pruning only skips isomorphic sibling duplicates.
        let specs = [
            ("name: so\nnode: O O O | O O I | O I I\nedge: O I", 2),
            ("name: c3\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3", 1),
            ("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1", 2),
        ];
        for (text, steps) in specs {
            let p = Problem::parse(text).unwrap();
            let base = SearchOptions {
                max_steps: steps,
                beam_width: 6,
                max_labels: 16,
                threads: 1,
                prune_siblings: false,
                ..SearchOptions::default()
            };
            let unpruned = autolb(&p, &base).unwrap();
            let pruned =
                autolb(&p, &SearchOptions { prune_siblings: true, ..base.clone() }).unwrap();
            assert_eq!(pruned.verdict, unpruned.verdict, "{text}");
            assert_eq!(pruned.certificate, unpruned.certificate, "{text}");
            assert_eq!(
                pruned.stats.cache.classes, unpruned.stats.cache.classes,
                "{text}: class sets diverged"
            );
        }
    }

    #[test]
    fn depth_budget_yields_a_partial_lower_bound() {
        let opts = SearchOptions { max_steps: 0, ..SearchOptions::default() };
        let out = autolb(&so3(), &opts).unwrap();
        assert_eq!(out.verdict, Verdict::LowerBound { rounds: 0 });
        out.certificate.unwrap().verify().unwrap();
    }
}
