//! The automated bound search: best-first beam exploration of the graph
//! whose nodes are problems (deduplicated by canonical form) and whose
//! edges are speedup steps and candidate relaxations/hardenings.
//!
//! ## Lower bounds ([`autolb`])
//!
//! From the input problem, the search interleaves [`full_step`] edges with
//! searched relaxations ([`crate::moves::relax_moves`]), exactly the §2.1
//! recipe but with the relaxations *discovered* instead of hand-supplied.
//! It stops on
//!
//! * a **cycle up to isomorphism** containing at least one step edge — the
//!   §4.4 fixed-point argument, certifying an unbounded lower bound;
//! * a **0-round problem** at step depth `d` — certifying lower bound `d`;
//! * **budget exhaustion** — certifying the depth reached.
//!
//! ## Upper bounds ([`autoub`])
//!
//! The dual hardening direction (§4.5): edges are speedup steps and
//! searched hardenings ([`crate::moves::harden_moves`]); reaching a 0-round
//! problem after `d` step edges certifies upper bound `d` on the
//! Theorem-1/2 regime.
//!
//! Every verdict is emitted as a [`Certificate`] and independently
//! replayed by [`Certificate::verify`] before being returned, so a search
//! bug cannot produce a wrong bound.
//!
//! ## Parallelism and determinism
//!
//! Frontier expansion fans out across cores with [`std::thread::scope`]
//! (the PR 2 merge-closure pattern): the *pure* per-node work — speedup
//! steps, candidate generation, canonicalization — runs on workers in
//! contiguous chunks, and results are folded into the cache sequentially
//! in item order. The outcome is identical for every thread count; the
//! `threads` option (0 = the `ROUNDELIM_THREADS` variable, else all
//! cores) only sets how fast it arrives.

use crate::cache::{
    cache_key, fingerprint, full_step_cached, CacheKey, CacheSnapshot, CacheStats, CanonCache,
    NodeId,
};
use crate::certificate::{CertVerdict, Certificate, Direction, Edge};
use crate::checkpoint::{checkpoint_file, Checkpoint, CkEntry};
use crate::failpoint;
use crate::moves::{harden_moves, harden_moves_pruned, relax_moves, relax_moves_pruned};
use crate::score::score;
use roundelim_core::error::{Error, Result};
use roundelim_core::iso::isomorphism;
use roundelim_core::problem::Problem;
use roundelim_core::profile::{span, Stage};
use roundelim_core::sequence::ZeroRoundModel;
use roundelim_obs as obs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shareable cooperative-cancellation probe (see [`SearchOptions::cancel`]).
///
/// Two flavors cover the two callers:
///
/// * [`CancelToken::new`] wraps a fresh atomic flag the owner flips with
///   [`CancelToken::cancel`] — the daemon holds one per in-flight request
///   and cancels it on client disconnect or shutdown;
/// * [`CancelToken::from_probe`] adapts a plain `fn() -> bool`, which is
///   what a signal handler can reach (the CLI's SIGTERM/SIGINT flag is a
///   `static AtomicBool` the handler stores to).
#[derive(Debug, Clone)]
pub struct CancelToken(TokenInner);

#[derive(Debug, Clone)]
enum TokenInner {
    Flag(Arc<AtomicBool>),
    Probe(fn() -> bool),
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> CancelToken {
        CancelToken(TokenInner::Flag(Arc::new(AtomicBool::new(false))))
    }

    /// Adapts an external probe (e.g. a signal-handler flag reader).
    /// [`CancelToken::cancel`] is a no-op on such tokens — cancellation is
    /// owned by whoever sets the probed state.
    pub fn from_probe(probe: fn() -> bool) -> CancelToken {
        CancelToken(TokenInner::Probe(probe))
    }

    /// Requests cancellation. Every clone of this token observes it.
    pub fn cancel(&self) {
        if let TokenInner::Flag(flag) = &self.0 {
            flag.store(true, Ordering::SeqCst);
        }
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        match &self.0 {
            TokenInner::Flag(flag) => flag.load(Ordering::SeqCst),
            TokenInner::Probe(probe) => probe(),
        }
    }
}

impl Default for CancelToken {
    fn default() -> CancelToken {
        CancelToken::new()
    }
}

/// A depth-boundary progress report (see [`SearchOptions::progress`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// The depth-loop counter at the boundary.
    pub depth: usize,
    /// Nodes expanded so far.
    pub expanded: usize,
    /// Isomorphism classes interned so far.
    pub classes: usize,
    /// Frontier size entering this depth.
    pub frontier: usize,
}

/// A progress observer called at every depth boundary of a search (the
/// same consistency points where checkpoints are taken), so a service can
/// stream progress events without touching the search's hot paths.
#[derive(Clone)]
pub struct ProgressHook(Arc<dyn Fn(Progress) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback. It runs on the search thread — keep it cheap.
    pub fn new(f: impl Fn(Progress) + Send + Sync + 'static) -> ProgressHook {
        ProgressHook(Arc::new(f))
    }

    pub(crate) fn emit(&self, p: Progress) {
        (self.0)(p);
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Tuning knobs for [`autolb`] / [`autoub`].
#[derive(Debug, Clone)]
pub struct SearchOptions {
    /// Speedup-step depth budget.
    pub max_steps: usize,
    /// Nodes stepped per depth level (and kept per relaxation wave).
    pub beam_width: usize,
    /// Whether to search relaxations/hardenings at all; with `false`,
    /// [`autolb`] degenerates to the plain iterated speedup.
    pub use_relaxations: bool,
    /// Problems with more labels than this are not enqueued (the speedup
    /// can grow alphabets doubly exponentially; relaxations are how the
    /// search gets back under the limit).
    pub max_labels: usize,
    /// Worker threads; 0 resolves `ROUNDELIM_THREADS` / all cores.
    pub threads: usize,
    /// Fingerprint shards of the wave interner
    /// ([`CanonCache::intern_wave`]); 0 resolves `ROUNDELIM_SHARDS` / 64.
    /// The shard count is deliberately independent of the thread count, so
    /// cache counters (and with them `SearchStats`) stay bit-identical at
    /// every thread count. `NodeId` assignment is identical at every shard
    /// count too (property-tested).
    pub shards: usize,
    /// The 0-round model for goal checks.
    pub model: ZeroRoundModel,
    /// Skip sibling move candidates that a verified constraint-row
    /// automorphism maps onto an earlier sibling
    /// ([`crate::moves::relax_moves_pruned`]). The searched class set,
    /// verdicts, and certificates are identical with or without pruning
    /// (property-tested); `false` exists for that cross-check and costs
    /// the duplicated canonicalization work.
    pub prune_siblings: bool,
    /// Wall-clock budget. On exhaustion the search stops at the next poll
    /// point and emits its best already-verified partial result
    /// ([`StopCause::TimeBudget`]). Inherently timing-dependent — for
    /// reproducible budget stops use [`SearchOptions::max_expansions`].
    pub time_budget: Option<Duration>,
    /// Expansion budget, checked at depth boundaries only, so a budget
    /// stop is deterministic: the same budget always stops at the same
    /// boundary with the same partial result ([`StopCause::ExpansionBudget`]).
    pub max_expansions: Option<usize>,
    /// Checkpoint persistence; `None` runs without any on-disk state.
    pub checkpoint: Option<CheckpointConf>,
    /// Cooperative cancellation probe (e.g. a SIGTERM flag or a daemon
    /// request token), polled at the same points as the time budget; a
    /// cancelled token stops the search gracefully
    /// ([`StopCause::Interrupted`]).
    pub cancel: Option<CancelToken>,
    /// Depth-boundary progress observer; `None` runs silently.
    pub progress: Option<ProgressHook>,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            max_steps: 12,
            beam_width: 8,
            use_relaxations: true,
            max_labels: 12,
            threads: 0,
            shards: 0,
            model: ZeroRoundModel::Oriented,
            prune_siblings: true,
            time_budget: None,
            max_expansions: None,
            checkpoint: None,
            cancel: None,
            progress: None,
        }
    }
}

/// Checkpoint persistence settings (see [`SearchOptions::checkpoint`]).
///
/// Snapshots are written only at **depth boundaries** — the top of the
/// step-depth loop, where the cache, the per-node metadata, and the loop
/// state are mutually consistent — so a resumed search replays exactly the
/// suffix an uninterrupted search would have run. A search that completes
/// deletes its snapshot; one stopped by a budget or interruption leaves the
/// latest boundary snapshot behind for [`CheckpointConf::resume`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConf {
    /// Directory holding the snapshot file ([`checkpoint_file`] names it).
    pub dir: PathBuf,
    /// Write a snapshot at the first depth boundary at which at least this
    /// many expansions happened since the last write (1 = every boundary
    /// with progress).
    pub every_expansions: usize,
    /// Continue from an existing snapshot in `dir` if one is present (a
    /// missing file falls back to a fresh start, which makes resuming after
    /// a crash-before-first-write safe).
    pub resume: bool,
}

impl CheckpointConf {
    /// Checkpointing into `dir` at every boundary, without resume.
    pub fn new(dir: impl Into<PathBuf>) -> CheckpointConf {
        CheckpointConf { dir: dir.into(), every_expansions: 1, resume: false }
    }
}

/// Why the search stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The search ran to its natural end: a conclusive verdict, or the
    /// reachable graph was exhausted.
    Completed,
    /// [`SearchOptions::max_steps`] was reached with a live frontier; a
    /// deeper budget may improve the bound.
    DepthExhausted,
    /// [`SearchOptions::time_budget`] expired.
    TimeBudget,
    /// [`SearchOptions::max_expansions`] was reached.
    ExpansionBudget,
    /// [`SearchOptions::cancel`] reported an interruption (e.g. SIGTERM).
    Interrupted,
}

impl StopCause {
    /// Whether the stop was forced by a budget or interruption (as opposed
    /// to running to natural completion or the configured depth).
    pub fn is_forced(self) -> bool {
        matches!(self, StopCause::TimeBudget | StopCause::ExpansionBudget | StopCause::Interrupted)
    }

    /// Stable machine-readable name (used in JSON reports).
    pub fn as_str(self) -> &'static str {
        match self {
            StopCause::Completed => "completed",
            StopCause::DepthExhausted => "depth-exhausted",
            StopCause::TimeBudget => "time-budget",
            StopCause::ExpansionBudget => "expansion-budget",
            StopCause::Interrupted => "interrupted",
        }
    }
}

/// The search's conclusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A speedup cycle up to isomorphism: the lower bound exceeds every `t`
    /// admitting a t-independent girth-(2t+2) class (e.g. Ω(log n) for
    /// sinkless orientation).
    Unbounded,
    /// A certified lower bound of `rounds` rounds.
    LowerBound {
        /// The certified bound.
        rounds: usize,
    },
    /// A certified upper bound of `rounds` rounds on the Theorem-1/2 regime.
    UpperBound {
        /// The certified bound.
        rounds: usize,
    },
    /// The budget was exhausted without a certifiable verdict.
    Inconclusive,
}

/// Search effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes whose speedup step was taken.
    pub expanded: usize,
    /// Speedup steps that died on a resource limit (alphabet overflow);
    /// those paths end there, the search continues elsewhere.
    pub step_failures: usize,
    /// Step depth reached.
    pub depth_reached: usize,
    /// Worker-thread panics captured by the parallel map; each one costs
    /// the panicking item's results (the beam degrades) but never the
    /// search.
    pub worker_panics: usize,
    /// Canonical-form cache counters.
    pub cache: CacheStats,
}

/// The result of a search: verdict, replayable certificate (already
/// verified), and effort counters.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// The conclusion.
    pub verdict: Verdict,
    /// The certificate backing the verdict (`None` only for
    /// [`Verdict::Inconclusive`]).
    pub certificate: Option<Certificate>,
    /// Why the search stopped. A forced stop ([`StopCause::is_forced`])
    /// still carries a fully verified — if partial — certificate.
    pub stop: StopCause,
    /// Effort counters.
    pub stats: SearchStats,
}

/// Resolves the worker-thread count through the workspace-wide convention
/// (explicit option, else `ROUNDELIM_THREADS`, else all cores).
use roundelim_core::par::resolve_threads;

/// Default fingerprint-shard count of the wave interner. A power of two
/// comfortably above any sane thread count: shard skew is what limits the
/// interner's parallelism, not shard count.
const DEFAULT_SHARDS: usize = 64;

/// Resolves the wave-interner shard count: explicit option, else the
/// `ROUNDELIM_SHARDS` environment variable, else [`DEFAULT_SHARDS`].
/// Deliberately independent of the thread count — see
/// [`SearchOptions::shards`].
fn resolve_shards(opt: usize) -> usize {
    if opt > 0 {
        return opt;
    }
    std::env::var("ROUNDELIM_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_SHARDS)
}

/// The search's parallel map: the shared work-stealing executor
/// ([`roundelim_core::par::par_map_catch`]) with the `worker-panic`
/// failpoint armed per item. Results come back in item order,
/// bit-identical for every thread count. A panic inside `f` is captured
/// **per item** — the item's slot comes back `None` and the second return
/// value counts the panics — so one poisoned problem degrades the beam
/// instead of aborting the search.
fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> (Vec<Option<R>>, usize)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    roundelim_core::par::par_map_catch(items, threads, |item| {
        failpoint::hit("worker-panic");
        f(item)
    })
}

/// Per-node search bookkeeping, indexed by [`NodeId`] in lockstep with the
/// cache's class store.
struct Meta {
    /// Step edges on the first-reach path from the root.
    depth: usize,
    /// First-reach parent and the edge that produced this node's
    /// representative from the parent's representative (verbatim — this is
    /// what makes certificate chains replay exactly).
    parent: Option<(NodeId, Edge)>,
}

struct Search {
    cache: CanonCache,
    meta: Vec<Meta>,
    opts: SearchOptions,
    threads: usize,
    shards: usize,
    stats: SearchStats,
    /// Wall-clock anchor for [`SearchOptions::time_budget`] (restarts on
    /// resume: the budget is per process run, not cumulative).
    started: obs::time::Stopwatch,
    /// Expansion count at the last checkpoint write (`None` = never
    /// written this run, so the first boundary writes immediately).
    last_ckpt: Option<usize>,
}

/// The depth-loop state of [`autolb`]/[`autoub`] — everything the loops
/// carry besides the [`Search`] itself, split out so a checkpoint can
/// capture and restore it wholesale.
struct LoopState {
    /// Current step depth (the loop counter).
    depth: usize,
    /// Frontier entering this depth.
    frontier: Vec<NodeId>,
    /// 0-round endpoints found so far.
    goals: Vec<NodeId>,
    /// Deepest non-goal chain endpoint seen (depth, node).
    deepest: (usize, NodeId),
}

/// A cycle hit: expanding `from` with `edge` derived `problem`, whose class
/// is the ancestor `back_to`.
struct CycleHit {
    from: NodeId,
    edge: Edge,
    problem: Problem,
    back_to: NodeId,
}

impl Search {
    fn new(opts: &SearchOptions) -> Search {
        Search {
            cache: CanonCache::new(),
            meta: Vec::new(),
            opts: opts.clone(),
            threads: resolve_threads(opts.threads),
            shards: resolve_shards(opts.shards),
            stats: SearchStats::default(),
            started: obs::time::Stopwatch::start(),
            last_ckpt: None,
        }
    }

    /// Sets up a search on `p`: resumes from an on-disk checkpoint when the
    /// options ask for it and one exists, else starts fresh. The root is
    /// always [`NodeId`] 0. The `bool` is `true` for a fresh start.
    fn init(
        p: &Problem,
        opts: &SearchOptions,
        direction: Direction,
    ) -> Result<(Search, LoopState, bool)> {
        if let Some(conf) = &opts.checkpoint {
            if conf.resume {
                let path = checkpoint_file(&conf.dir);
                if path.exists() {
                    let ck = Checkpoint::load(&path)?;
                    let (s, st) = Search::from_checkpoint(ck, opts, direction, p)?;
                    return Ok((s, st, false));
                }
            }
        }
        let mut s = Search::new(opts);
        let key = cache_key(p);
        let (root, _) = s.intern(p.clone(), key, None, 0);
        debug_assert_eq!(root, NodeId(0));
        let st =
            LoopState { depth: 0, frontier: vec![root], goals: Vec::new(), deepest: (0, root) };
        Ok((s, st, true))
    }

    /// First stop cause that currently applies, if any. Polled at depth
    /// boundaries (all causes) and at mid-depth points (where the
    /// expansion check is still deterministic: `expanded` only moves at
    /// boundaries).
    fn stop_cause(&self) -> Option<StopCause> {
        if self.opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(StopCause::Interrupted);
        }
        if self.opts.time_budget.is_some_and(|b| self.started.elapsed() >= b) {
            return Some(StopCause::TimeBudget);
        }
        if self.opts.max_expansions.is_some_and(|m| self.stats.expanded >= m) {
            return Some(StopCause::ExpansionBudget);
        }
        None
    }

    /// The non-deterministic stop signals only (wall clock, cancellation),
    /// safe to poll anywhere — inside the relaxation closure, between
    /// stages — without affecting deterministic (budget/fresh) runs.
    fn soft_stop(&self) -> bool {
        self.opts.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            || self.opts.time_budget.is_some_and(|b| self.started.elapsed() >= b)
    }

    /// Captures the complete search state at a depth boundary.
    fn to_checkpoint(&self, st: &LoopState, direction: Direction, root: &Problem) -> Checkpoint {
        let snap = self.cache.snapshot();
        let entries = snap
            .entries
            .into_iter()
            .zip(&self.meta)
            .map(|((problem, step, zero_round), m)| CkEntry {
                problem,
                depth: m.depth,
                parent: m.parent.as_ref().map(|(id, e)| (id.0, e.clone())),
                step: step.map(|(succ, derived)| (succ.0, derived)),
                zero_round,
            })
            .collect();
        let mut stats = self.stats;
        stats.cache = snap.stats;
        Checkpoint {
            direction,
            model: self.opts.model,
            root: root.clone(),
            beam_width: self.opts.beam_width,
            max_labels: self.opts.max_labels,
            use_relaxations: self.opts.use_relaxations,
            prune_siblings: self.opts.prune_siblings,
            depth: st.depth,
            frontier: st.frontier.iter().map(|n| n.0).collect(),
            goals: st.goals.iter().map(|n| n.0).collect(),
            deepest_depth: st.deepest.0,
            deepest_node: st.deepest.1 .0,
            stats,
            entries,
            fps: snap
                .fps
                .into_iter()
                .map(|(fp, ids)| (fp, ids.into_iter().map(|n| n.0).collect()))
                .collect(),
        }
    }

    /// Rebuilds the boundary state captured by [`Search::to_checkpoint`].
    /// The continuation is a pure function of this state and the options,
    /// so the resumed search produces the verdict, certificate, and
    /// counters of the uninterrupted run, bit for bit.
    fn from_checkpoint(
        ck: Checkpoint,
        opts: &SearchOptions,
        direction: Direction,
        root: &Problem,
    ) -> Result<(Search, LoopState)> {
        let bad = |reason: String| Error::Inconsistent { reason };
        if ck.direction != direction {
            return Err(bad("checkpoint direction does not match this search".into()));
        }
        if ck.root != *root {
            return Err(bad("checkpoint was taken on a different input problem".into()));
        }
        if ck.model != opts.model
            || ck.beam_width != opts.beam_width
            || ck.max_labels != opts.max_labels
            || ck.use_relaxations != opts.use_relaxations
            || ck.prune_siblings != opts.prune_siblings
        {
            return Err(bad("checkpoint was produced with different search options \
                 (model/beam/max-labels/relaxations/pruning must match; \
                 steps, budgets and threads may differ)"
                .into()));
        }
        let n = ck.entries.len();
        if n == 0 {
            return Err(bad("checkpoint has no interned problems".into()));
        }
        let node = |id: u32, what: &str| -> Result<NodeId> {
            if (id as usize) < n {
                Ok(NodeId(id))
            } else {
                Err(bad(format!("checkpoint {what} id {id} out of range ({n} entries)")))
            }
        };
        let mut entries = Vec::with_capacity(n);
        let mut meta = Vec::with_capacity(n);
        for (i, e) in ck.entries.into_iter().enumerate() {
            let problem = e.problem;
            let step = match e.step {
                None => None,
                Some((succ, derived)) => Some((node(succ, "step successor")?, derived)),
            };
            let parent = match e.parent {
                None => None,
                Some((pid, edge)) => {
                    let pid = node(pid, "parent")?;
                    // First-reach parents strictly precede their children;
                    // anything else would let `is_ancestor` loop forever.
                    if pid.index() >= i {
                        return Err(bad(format!(
                            "checkpoint entry {i} has non-ancestral parent {}",
                            pid.0
                        )));
                    }
                    Some((pid, edge))
                }
            };
            entries.push((problem, step, e.zero_round));
            meta.push(Meta { depth: e.depth, parent });
        }
        if entries[0].0 != ck.root {
            return Err(bad("checkpoint root is not its first entry".into()));
        }
        let fps = ck
            .fps
            .into_iter()
            .map(|(fp, ids)| {
                let ids = ids
                    .into_iter()
                    .map(|id| node(id, "fingerprint"))
                    .collect::<Result<Vec<_>>>()?;
                Ok((fp, ids))
            })
            .collect::<Result<Vec<_>>>()?;
        let cache = CanonCache::restore(CacheSnapshot { entries, fps, stats: ck.stats.cache })?;
        let frontier =
            ck.frontier.into_iter().map(|id| node(id, "frontier")).collect::<Result<Vec<_>>>()?;
        let goals = ck.goals.into_iter().map(|id| node(id, "goal")).collect::<Result<Vec<_>>>()?;
        let deepest = (ck.deepest_depth, node(ck.deepest_node, "deepest")?);
        let s = Search {
            cache,
            meta,
            opts: opts.clone(),
            threads: resolve_threads(opts.threads),
            shards: resolve_shards(opts.shards),
            stats: ck.stats,
            started: obs::time::Stopwatch::start(),
            // Nothing new since the snapshot we just loaded.
            last_ckpt: Some(ck.stats.expanded),
        };
        Ok((s, LoopState { depth: ck.depth, frontier, goals, deepest }))
    }

    /// Emits a depth-boundary progress event, if an observer is installed.
    fn report_progress(&self, st: &LoopState) {
        if let Some(hook) = &self.opts.progress {
            hook.emit(Progress {
                depth: st.depth,
                expanded: self.stats.expanded,
                classes: self.cache.len(),
                frontier: st.frontier.len(),
            });
        }
    }

    /// Writes a boundary checkpoint if one is configured and due.
    fn maybe_checkpoint(
        &mut self,
        st: &LoopState,
        direction: Direction,
        root: &Problem,
    ) -> Result<()> {
        let Some(conf) = &self.opts.checkpoint else {
            return Ok(());
        };
        let due = match self.last_ckpt {
            None => true,
            Some(at) => self.stats.expanded.saturating_sub(at) >= conf.every_expansions,
        };
        if due {
            self.write_checkpoint(st, direction, root)?;
        }
        Ok(())
    }

    /// Unconditionally writes a boundary checkpoint (no-op without a
    /// checkpoint configuration). Called for due periodic writes and for
    /// the final write on a forced stop.
    fn write_checkpoint(
        &mut self,
        st: &LoopState,
        direction: Direction,
        root: &Problem,
    ) -> Result<()> {
        let Some(conf) = &self.opts.checkpoint else {
            return Ok(());
        };
        let path = checkpoint_file(&conf.dir);
        let _sp = obs::trace::span("search.checkpoint_write");
        let watch = obs::time::Stopwatch::start();
        self.to_checkpoint(st, direction, root).save(&path)?;
        obs::metrics::histogram("search.checkpoint_write_ns").record(watch.elapsed_ns());
        obs::metrics::counter("search.checkpoint_writes").incr();
        self.last_ckpt = Some(self.stats.expanded);
        Ok(())
    }

    /// Removes the on-disk snapshot after a completed search: a later
    /// `--resume` must rerun from scratch, not replay a finished search's
    /// stale frontier.
    fn clear_checkpoint(&self) {
        if let Some(conf) = &self.opts.checkpoint {
            let _ = std::fs::remove_file(checkpoint_file(&conf.dir));
        }
    }

    fn intern(
        &mut self,
        p: Problem,
        key: CacheKey,
        parent: Option<(NodeId, Edge)>,
        depth: usize,
    ) -> (NodeId, bool) {
        let (id, back) = self.cache.intern_keyed(key, p);
        let new = back.is_none();
        if new {
            self.meta.push(Meta { depth, parent });
            debug_assert_eq!(self.meta.len(), self.cache.len());
        }
        (id, new)
    }

    /// Problems above this label count are not interned at all: they are
    /// too symmetric to canonicalize affordably and too far from the beam
    /// to ever be relaxed back under [`SearchOptions::max_labels`] by
    /// pairwise merges.
    fn intern_cap(&self) -> usize {
        (4 * self.opts.max_labels).max(24)
    }

    fn zero(&mut self, id: NodeId) -> bool {
        let model = self.opts.model;
        self.cache.is_zero_round(id, model)
    }

    fn is_ancestor(&self, anc: NodeId, mut n: NodeId) -> bool {
        loop {
            if n == anc {
                return true;
            }
            match self.meta[n.index()].parent {
                Some((p, _)) => n = p,
                None => return false,
            }
        }
    }

    /// The first-reach chain root → `n`: problems and connecting edges.
    fn chain_to(&self, n: NodeId) -> (Vec<Problem>, Vec<Edge>, Vec<NodeId>) {
        let mut ids = vec![n];
        let mut edges = Vec::new();
        let mut cur = n;
        while let Some((p, e)) = &self.meta[cur.index()].parent {
            ids.push(*p);
            edges.push(e.clone());
            cur = *p;
        }
        ids.reverse();
        edges.reverse();
        let problems = ids.iter().map(|&id| self.cache.problem(id).clone()).collect();
        (problems, edges, ids)
    }

    /// Orders `pool` by (score, id) and truncates to the beam width.
    fn select_beam(&self, pool: &mut Vec<NodeId>) {
        pool.sort_by_key(|&id| (score(self.cache.problem(id)), id));
        pool.truncate(self.opts.beam_width);
    }

    /// The beam actually stepped: best nodes whose alphabet fits
    /// [`SearchOptions::max_labels`] (oversized pool members only serve as
    /// relaxation sources — stepping them would blow the alphabet up
    /// further).
    fn steppable_beam(&self, pool: &[NodeId]) -> Vec<NodeId> {
        let mut beam: Vec<NodeId> = pool
            .iter()
            .copied()
            .filter(|&id| self.cache.problem(id).alphabet().len() <= self.opts.max_labels)
            .collect();
        self.select_beam(&mut beam);
        beam
    }

    /// Expands relaxation (or hardening) moves from `pool` to a fixed
    /// point, interning new nodes at `depth`. New 0-round nodes are pushed
    /// to `goals` and not expanded further. Returns a cycle hit as soon as
    /// one closes (lower-bound direction only; hardening chains cannot
    /// cycle usefully and `detect_cycles` is false there).
    fn sideways_closure(
        &mut self,
        pool: &mut Vec<NodeId>,
        depth: usize,
        direction: Direction,
        detect_cycles: bool,
        goals: &mut Vec<NodeId>,
    ) -> Option<CycleHit> {
        let _sp = span(Stage::RelaxClosure);
        let prune = self.opts.prune_siblings;
        let mut wave: Vec<NodeId> = pool.clone();
        let mut wave_ix = 0u64;
        while !wave.is_empty() {
            // One trace span per relaxation wave; the wave size histogram
            // feeds the `--json` obs section and the daemon metrics.
            let _wave_span = obs::trace::span_v("search.wave", wave_ix);
            wave_ix += 1;
            obs::metrics::histogram("search.wave_size").record(wave.len() as u64);
            // Relaxation waves can run long; honor wall-clock budgets and
            // interruptions between waves (deterministic budget runs never
            // trigger this — see `soft_stop`).
            if self.soft_stop() {
                return None;
            }
            // Generate candidates (and their invariant fingerprints) in
            // parallel; the per-candidate work is pure. Canonical keys are
            // *not* computed here: the wave interner resolves re-derived
            // classes with one short isomorphism check in its parallel
            // shard phase and computes a canonical key (also on workers)
            // only for genuinely new classes.
            let sources: Vec<(NodeId, Problem)> =
                wave.iter().map(|&n| (n, self.cache.problem(n).clone())).collect();
            let cap = self.intern_cap();
            // Oversized sources (above the step bound) only exist to be
            // relaxed back under it; their quadratic pairwise-merge fan-out
            // is restricted to ⊆-comparable edge rows (see
            // `relax_moves_pruned`).
            let max_labels = self.opts.max_labels;
            type CandList = Vec<(Vec<roundelim_core::label::Label>, Problem, u64)>;
            let (cands, panics): (Vec<Option<CandList>>, usize) =
                par_map(&sources, self.threads, |(_, p)| {
                    let moves: Vec<_> = match (direction, prune) {
                        (Direction::Lower, true) => {
                            let subset_only = p.alphabet().len() > max_labels;
                            relax_moves_pruned(p, subset_only)
                                .into_iter()
                                .map(|m| (m.map, m.result))
                                .collect()
                        }
                        (Direction::Lower, false) => {
                            relax_moves(p).into_iter().map(|m| (m.map, m.result)).collect()
                        }
                        (Direction::Upper, true) => {
                            harden_moves_pruned(p).into_iter().map(|m| (m.map, m.result)).collect()
                        }
                        (Direction::Upper, false) => {
                            harden_moves(p).into_iter().map(|m| (m.map, m.result)).collect()
                        }
                    };
                    moves
                        .into_iter()
                        .filter(|(_, r)| r.alphabet().len() <= cap)
                        .map(|(map, r)| {
                            let fp = fingerprint(&r);
                            (map, r, fp)
                        })
                        .collect()
                });
            // Flatten the surviving candidates in item order and resolve
            // the whole wave against the sharded cache at once: dedup runs
            // in parallel across fingerprint shards, then `NodeId`s are
            // assigned in a deterministic sequential pass in the same item
            // order the old one-at-a-time fold used — ids, buckets, and
            // counters are bit-identical to it at every thread count.
            self.stats.worker_panics += panics;
            let mut flat: Vec<(u64, Problem)> = Vec::new();
            let mut origin: Vec<(NodeId, Edge)> = Vec::new();
            for ((n, _), list) in sources.iter().zip(cands) {
                // A captured worker panic loses this source's candidates;
                // the closure continues with everyone else's.
                let Some(list) = list else {
                    continue;
                };
                for (map, result, fp) in list {
                    let edge = match direction {
                        Direction::Lower => Edge::Relax { map },
                        Direction::Upper => Edge::Harden { map },
                    };
                    origin.push((*n, edge));
                    flat.push((fp, result));
                }
            }
            let resolved = self.cache.intern_wave(flat, self.threads, self.shards);
            let mut next_wave = Vec::new();
            let mut hit: Option<CycleHit> = None;
            for ((n, edge), (c, returned)) in origin.into_iter().zip(resolved) {
                match returned {
                    None => {
                        // A new class: goal-check it, else it joins the
                        // pool and the next wave.
                        // The wave's classes were already committed in item
                        // order, so the k-th new item here carries the k-th
                        // freshly assigned id — meta stays in id lockstep.
                        self.meta.push(Meta { depth, parent: Some((n, edge)) });
                        debug_assert_eq!(self.meta.len(), c.index() + 1);
                        if self.zero(c) {
                            goals.push(c);
                        } else {
                            pool.push(c);
                            next_wave.push(c);
                        }
                    }
                    Some(result) => {
                        if hit.is_none()
                            && detect_cycles
                            && self.is_ancestor(c, n)
                            && self.meta[n.index()].depth > self.meta[c.index()].depth
                        {
                            // A sideways edge closing onto an ancestor with
                            // at least one step edge in between. Keep
                            // scanning so the wave commits whole (the first
                            // hit in item order is returned either way).
                            hit = Some(CycleHit { from: n, edge, problem: result, back_to: c });
                        }
                    }
                }
            }
            if hit.is_some() {
                return hit;
            }
            // Keep the wave (and the per-depth pool) bounded: relaxation
            // chains strictly shrink the alphabet, so this terminates, but
            // without a beam the partition lattice is explored whole.
            self.select_beam(&mut next_wave);
            wave = next_wave;
        }
        None
    }

    /// Takes the speedup step of every beam node in parallel, interning
    /// children at `depth + 1`. Steps that die on a resource limit
    /// (alphabet overflow) or whose child exceeds the intern cap are dead
    /// ends: the path stops, the search continues. Returns the new
    /// frontier and a cycle hit if one closed.
    fn step_beam(
        &mut self,
        beam: &[NodeId],
        depth: usize,
        detect_cycles: bool,
        goals: &mut Vec<NodeId>,
    ) -> (Vec<NodeId>, Option<CycleHit>) {
        // Memoized steps resolve immediately (successor id only — the
        // derived problem is fetched just on the cycle-hit path); the rest
        // compute in parallel.
        let mut todo: Vec<(NodeId, Problem)> = Vec::new();
        let mut resolved: Vec<(NodeId, Option<NodeId>)> = Vec::new();
        for &n in beam {
            match self.cache.step_succ(n) {
                Some(succ) => resolved.push((n, Some(succ))),
                None => {
                    todo.push((n, self.cache.problem(n).clone()));
                    resolved.push((n, None));
                }
            }
        }
        let cap = self.intern_cap();
        // Inner Option: resource dead end. Outer (from par_map): panic.
        type StepResult = Option<(Problem, CacheKey)>;
        let (computed, panics): (Vec<Option<StepResult>>, usize) =
            par_map(&todo, self.threads, |(_, p)| {
                // The process-wide memo makes repeated searches (sweeps, bench
                // iterations) pay for each distinct speedup once.
                let derived = full_step_cached(p).ok()?;
                if derived.alphabet().len() > cap
                    || derived.node().is_empty()
                    || derived.edge().is_empty()
                {
                    // Over-cap children cannot be canonicalized affordably; an
                    // empty constraint means the derived problem is unsolvable
                    // outright (and the text format cannot express it). Both
                    // end the path here.
                    return None;
                }
                let _sp = span(Stage::Canon);
                let key = cache_key(&derived);
                Some((derived, key))
            });
        self.stats.worker_panics += panics;
        let mut computed_iter = computed.into_iter();
        let mut frontier = Vec::new();
        let mut hit = None;
        for (n, memo) in resolved {
            self.stats.expanded += 1;
            let (child, new) = match memo {
                Some(succ) => (succ, false),
                None => {
                    // Outer `None` is a captured worker panic, inner `None`
                    // a resource dead end; both end the path here.
                    let Some((derived, key)) =
                        computed_iter.next().expect("one result per todo item").flatten()
                    else {
                        self.stats.step_failures += 1;
                        continue; // dead end: overflow, over-cap child, or panic
                    };
                    let (succ, new) = self.cache.record_step(n, derived, key);
                    if new {
                        self.meta.push(Meta { depth: depth + 1, parent: Some((n, Edge::Step)) });
                        debug_assert_eq!(self.meta.len(), self.cache.len());
                    }
                    (succ, new)
                }
            };
            if hit.is_some() {
                continue; // a cycle already closed; drain deterministically
            }
            if new {
                if self.zero(child) {
                    goals.push(child);
                } else {
                    // Oversized children stay in the frontier as
                    // relaxation sources; `steppable_beam` keeps them away
                    // from the next step stage.
                    frontier.push(child);
                }
            } else if detect_cycles && self.is_ancestor(child, n) {
                let problem =
                    self.cache.step_derived(n).expect("memo recorded for this node").clone();
                hit = Some(CycleHit { from: n, edge: Edge::Step, problem, back_to: child });
            }
            // A dedup into a non-ancestor class is exhausted ground: that
            // class was (or will be) expanded from its first-reach path.
        }
        (frontier, hit)
    }

    /// Builds and **verifies** the unbounded certificate for a cycle hit.
    fn unbounded_certificate(&self, hit: &CycleHit) -> Certificate {
        let (mut problems, mut edges, ids) = self.chain_to(hit.from);
        let cycle_start = ids
            .iter()
            .position(|&id| id == hit.back_to)
            .expect("cycle target is an ancestor of the closing node");
        edges.push(hit.edge.clone());
        problems.push(hit.problem.clone());
        let iso_map = isomorphism(&hit.problem, &problems[cycle_start])
            .expect("same canonical key implies isomorphic");
        Certificate {
            direction: Direction::Lower,
            model: self.opts.model,
            problems,
            edges,
            incomplete: false,
            verdict: CertVerdict::Unbounded { cycle_start, iso_map },
        }
    }

    fn outcome(
        &self,
        verdict: Verdict,
        certificate: Option<Certificate>,
        stop: StopCause,
    ) -> Outcome {
        let mut stats = self.stats;
        stats.cache = self.cache.stats;
        Outcome { verdict, certificate, stop, stats }
    }
}

/// Searches for a lower bound on `p` (see module docs). The returned
/// certificate has already replayed green under
/// [`Certificate::verify`].
///
/// # Errors
///
/// Propagates engine errors (e.g. alphabet overflow during a speedup) and
/// rejects internally inconsistent certificates (a search bug, surfaced
/// rather than silently mis-reported).
pub fn autolb(p: &Problem, opts: &SearchOptions) -> Result<Outcome> {
    let (mut s, mut st, fresh) = Search::init(p, opts, Direction::Lower)?;
    let root = NodeId(0);
    if fresh && s.zero(root) {
        let cert = Certificate {
            direction: Direction::Lower,
            model: opts.model,
            problems: vec![p.clone()],
            edges: vec![],
            incomplete: false,
            verdict: CertVerdict::LowerBound { rounds: 0 },
        };
        s.clear_checkpoint();
        return finish(s.outcome(
            Verdict::LowerBound { rounds: 0 },
            Some(cert),
            StopCause::Completed,
        ));
    }
    let mut stop = StopCause::Completed;
    while st.depth < opts.max_steps {
        let _depth_span = obs::trace::span_v("search.depth", st.depth as u64);
        obs::metrics::histogram("search.beam_occupancy").record(st.frontier.len() as u64);
        // Depth boundary: cache, metadata and loop state are consistent —
        // the only place snapshots are taken and budgets can force a stop
        // deterministically.
        if let Some(cause) = s.stop_cause() {
            stop = cause;
            s.write_checkpoint(&st, Direction::Lower, p)?;
            break;
        }
        s.maybe_checkpoint(&st, Direction::Lower, p)?;
        s.report_progress(&st);
        let mut pool = st.frontier.clone();
        if opts.use_relaxations {
            if let Some(hit) =
                s.sideways_closure(&mut pool, st.depth, Direction::Lower, true, &mut st.goals)
            {
                let cert = s.unbounded_certificate(&hit);
                s.clear_checkpoint();
                return finish(s.outcome(Verdict::Unbounded, Some(cert), StopCause::Completed));
            }
        }
        if let Some(cause) = s.stop_cause() {
            // Mid-depth stop (time budget/interruption during the closure):
            // emit the partial verdict from what is already verified. No
            // snapshot here — the cache has advanced past the boundary the
            // loop state describes, so the last boundary snapshot stands.
            stop = cause;
            break;
        }
        let beam = s.steppable_beam(&pool);
        let (next, hit) = s.step_beam(&beam, st.depth, true, &mut st.goals);
        st.depth += 1;
        s.stats.depth_reached = s.stats.depth_reached.max(st.depth);
        if let Some(hit) = hit {
            let cert = s.unbounded_certificate(&hit);
            s.clear_checkpoint();
            return finish(s.outcome(Verdict::Unbounded, Some(cert), StopCause::Completed));
        }
        if next.is_empty() {
            st.frontier.clear();
            break;
        }
        st.deepest = (st.depth, next[0]);
        st.frontier = next;
    }
    if stop == StopCause::Completed && !st.frontier.is_empty() {
        // Ran out of configured depth with a live frontier.
        stop = StopCause::DepthExhausted;
        s.write_checkpoint(&st, Direction::Lower, p)?;
    }
    // Certify the best endpoint seen — a 0-round endpoint at maximal step
    // depth, or the deepest non-0-round chain.
    let best_goal = st.goals.iter().map(|&g| (s.meta[g.index()].depth, g)).max_by_key(|&(d, _)| d);
    let (rounds, endpoint) = match best_goal {
        Some((d, g)) if d >= st.deepest.0 => (d, g),
        _ => st.deepest,
    };
    let incomplete = stop != StopCause::Completed;
    let (problems, edges, _) = s.chain_to(endpoint);
    let cert = Certificate {
        direction: Direction::Lower,
        model: opts.model,
        problems,
        edges,
        incomplete,
        verdict: CertVerdict::LowerBound { rounds },
    };
    if !incomplete {
        s.clear_checkpoint();
    }
    finish(s.outcome(Verdict::LowerBound { rounds }, Some(cert), stop))
}

/// Searches for an upper-bound derivation for `p` (see module docs). The
/// returned certificate has already replayed green under
/// [`Certificate::verify`].
///
/// # Errors
///
/// Propagates engine errors; rejects internally inconsistent certificates.
pub fn autoub(p: &Problem, opts: &SearchOptions) -> Result<Outcome> {
    let (mut s, mut st, fresh) = Search::init(p, opts, Direction::Upper)?;
    if fresh && s.zero(NodeId(0)) {
        st.goals.push(NodeId(0));
    }
    let mut stop = StopCause::Completed;
    while st.goals.is_empty() && st.depth < opts.max_steps && !st.frontier.is_empty() {
        let _depth_span = obs::trace::span_v("search.depth", st.depth as u64);
        obs::metrics::histogram("search.beam_occupancy").record(st.frontier.len() as u64);
        if let Some(cause) = s.stop_cause() {
            stop = cause;
            s.write_checkpoint(&st, Direction::Upper, p)?;
            break;
        }
        s.maybe_checkpoint(&st, Direction::Upper, p)?;
        s.report_progress(&st);
        let mut pool = st.frontier.clone();
        if opts.use_relaxations {
            s.sideways_closure(&mut pool, st.depth, Direction::Upper, false, &mut st.goals);
        }
        if !st.goals.is_empty() {
            break; // a hardening reached a 0-round problem at this depth
        }
        if let Some(cause) = s.stop_cause() {
            stop = cause; // mid-depth stop: see the autolb twin for why no snapshot
            break;
        }
        let beam = s.steppable_beam(&pool);
        let (next, _) = s.step_beam(&beam, st.depth, false, &mut st.goals);
        st.depth += 1;
        s.stats.depth_reached = s.stats.depth_reached.max(st.depth);
        st.frontier = next;
    }
    // The shallowest goal wins (BFS by step depth ⇒ the first recorded
    // goal is at the minimal step depth reached).
    let Some(&goal) = st.goals.first() else {
        if stop == StopCause::Completed && !st.frontier.is_empty() && st.depth >= opts.max_steps {
            stop = StopCause::DepthExhausted;
            s.write_checkpoint(&st, Direction::Upper, p)?;
        }
        if stop == StopCause::Completed {
            s.clear_checkpoint();
        }
        return Ok(s.outcome(Verdict::Inconclusive, None, stop));
    };
    let rounds = s.meta[goal.index()].depth;
    let (problems, edges, _) = s.chain_to(goal);
    let cert = Certificate {
        direction: Direction::Upper,
        model: opts.model,
        problems,
        edges,
        incomplete: false,
        verdict: CertVerdict::UpperBound { rounds },
    };
    s.clear_checkpoint();
    finish(s.outcome(Verdict::UpperBound { rounds }, Some(cert), StopCause::Completed))
}

/// Replays the outcome's certificate before handing it to the caller: the
/// search never returns a bound its own verifier rejects.
fn finish(outcome: Outcome) -> Result<Outcome> {
    if let Some(cert) = &outcome.certificate {
        cert.verify().map_err(|e| roundelim_core::error::Error::Inconsistent {
            reason: format!("search produced an invalid certificate (bug): {e}"),
        })?;
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn so3() -> Problem {
        Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap()
    }

    /// A fresh checkpoint directory unique to this test.
    fn ckpt_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("roundelim-search-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn zero_expansion_budget_yields_a_verified_incomplete_result() {
        let opts =
            SearchOptions { max_expansions: Some(0), threads: 1, ..SearchOptions::default() };
        let out = autolb(&so3(), &opts).unwrap();
        assert_eq!(out.stop, StopCause::ExpansionBudget);
        assert!(out.stop.is_forced());
        assert_eq!(out.verdict, Verdict::LowerBound { rounds: 0 });
        let cert = out.certificate.unwrap();
        assert!(cert.incomplete);
        cert.verify().unwrap();
    }

    #[test]
    fn budget_cut_then_resume_matches_the_uninterrupted_run_exactly() {
        for threads in [1, 4] {
            let opts = SearchOptions { threads, ..SearchOptions::default() };
            let reference = autolb(&so3(), &opts).unwrap();
            assert_eq!(reference.verdict, Verdict::Unbounded);
            assert_eq!(reference.stop, StopCause::Completed);

            let dir = ckpt_dir(&format!("resume-t{threads}"));
            let cut = SearchOptions {
                max_expansions: Some(1),
                checkpoint: Some(CheckpointConf::new(&dir)),
                ..opts.clone()
            };
            let partial = autolb(&so3(), &cut).unwrap();
            assert_eq!(partial.stop, StopCause::ExpansionBudget);
            assert!(partial.certificate.unwrap().incomplete);
            assert!(checkpoint_file(&dir).exists(), "forced stop must leave a snapshot");

            let resume = SearchOptions {
                checkpoint: Some(CheckpointConf { resume: true, ..CheckpointConf::new(&dir) }),
                ..opts.clone()
            };
            let resumed = autolb(&so3(), &resume).unwrap();
            assert_eq!(resumed.verdict, reference.verdict, "threads={threads}");
            assert_eq!(resumed.certificate, reference.certificate, "threads={threads}");
            assert_eq!(resumed.stats, reference.stats, "threads={threads}");
            assert!(!checkpoint_file(&dir).exists(), "completed search must clear its snapshot");
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn resume_with_missing_snapshot_starts_fresh() {
        let dir = ckpt_dir("fresh");
        let opts = SearchOptions {
            threads: 1,
            checkpoint: Some(CheckpointConf { resume: true, ..CheckpointConf::new(&dir) }),
            ..SearchOptions::default()
        };
        let out = autolb(&so3(), &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Unbounded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_rejects_mismatched_options_problem_and_direction() {
        let dir = ckpt_dir("mismatch");
        let cut = SearchOptions {
            threads: 1,
            max_expansions: Some(1),
            checkpoint: Some(CheckpointConf::new(&dir)),
            ..SearchOptions::default()
        };
        autolb(&so3(), &cut).unwrap();
        assert!(checkpoint_file(&dir).exists());
        let resume_conf = Some(CheckpointConf { resume: true, ..CheckpointConf::new(&dir) });
        // Changed beam width: incompatible.
        let bad_beam = SearchOptions {
            beam_width: 3,
            checkpoint: resume_conf.clone(),
            ..SearchOptions::default()
        };
        assert!(autolb(&so3(), &bad_beam).is_err());
        // Different input problem: incompatible.
        let ok_opts = SearchOptions { checkpoint: resume_conf.clone(), ..SearchOptions::default() };
        let other = Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap();
        assert!(autolb(&other, &ok_opts).is_err());
        // Wrong direction: incompatible.
        assert!(autoub(&so3(), &ok_opts).is_err());
        // Deeper step/expansion budgets are compatible by design.
        let deeper =
            SearchOptions { max_steps: 20, checkpoint: resume_conf, ..SearchOptions::default() };
        assert_eq!(autolb(&so3(), &deeper).unwrap().verdict, Verdict::Unbounded);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sinkless_orientation_is_unbounded_without_hand_relaxations() {
        let out = autolb(&so3(), &SearchOptions::default()).unwrap();
        assert_eq!(out.verdict, Verdict::Unbounded);
        let cert = out.certificate.unwrap();
        cert.verify().unwrap();
        assert!(cert.steps() >= 1);
    }

    #[test]
    fn plain_speedup_mode_finds_the_sinkless_cycle_too() {
        let opts = SearchOptions { use_relaxations: false, ..SearchOptions::default() };
        let out = autolb(&so3(), &opts).unwrap();
        assert_eq!(out.verdict, Verdict::Unbounded);
    }

    #[test]
    fn trivial_problem_is_zero_rounds_both_directions() {
        let t = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let lb = autolb(&t, &SearchOptions::default()).unwrap();
        assert_eq!(lb.verdict, Verdict::LowerBound { rounds: 0 });
        let ub = autoub(&t, &SearchOptions::default()).unwrap();
        assert_eq!(ub.verdict, Verdict::UpperBound { rounds: 0 });
        ub.certificate.unwrap().verify().unwrap();
    }

    #[test]
    fn thread_count_does_not_change_the_outcome() {
        // Verdict, certificate, AND every effort counter must be
        // bit-identical at every thread count: the executor only changes
        // the schedule, the sharded wave interner assigns ids in item
        // order, and the shard count is fixed independently of `threads`.
        let base =
            autolb(&so3(), &SearchOptions { threads: 1, ..SearchOptions::default() }).unwrap();
        for threads in [2, 3, 4, 7, 8] {
            let out =
                autolb(&so3(), &SearchOptions { threads, ..SearchOptions::default() }).unwrap();
            assert_eq!(out.verdict, base.verdict, "threads={threads}");
            assert_eq!(out.certificate, base.certificate, "threads={threads}");
            assert_eq!(out.stats, base.stats, "threads={threads}");
        }
    }

    #[test]
    fn shard_count_does_not_change_the_outcome() {
        // Isomorphic candidates always share a fingerprint, hence a shard:
        // dedup decisions — and with them every `NodeId` assignment, the
        // verdict, and the certificate — are shard-count-invariant.
        let mm = roundelim_problems::matching::maximal_matching(3).unwrap();
        let opts = SearchOptions {
            max_steps: 6,
            beam_width: 6,
            max_labels: 10,
            threads: 2,
            ..SearchOptions::default()
        };
        let base = autolb(&mm, &SearchOptions { shards: 1, ..opts.clone() }).unwrap();
        for shards in [4, 64] {
            let out = autolb(&mm, &SearchOptions { shards, ..opts.clone() }).unwrap();
            assert_eq!(out.verdict, base.verdict, "shards={shards}");
            assert_eq!(out.certificate, base.certificate, "shards={shards}");
        }
    }

    #[test]
    fn one_round_problem_gets_upper_bound_one() {
        // Not 0-round solvable (no node config is edge-self-compatible in
        // any orientation split), but its full step is: upper bound 1.
        let p = Problem::parse("name: ub1\nnode: A B | A C\nedge: A A | A C | B B").unwrap();
        let out = autoub(&p, &SearchOptions::default()).unwrap();
        assert_eq!(out.verdict, Verdict::UpperBound { rounds: 1 });
        let cert = out.certificate.unwrap();
        assert_eq!(cert.steps(), 1);
        cert.verify().unwrap();
    }

    #[test]
    fn maximal_matching_needs_a_searched_relaxation() {
        // Maximal matching at Δ=3: the plain iterated speedup dies on
        // description growth after 2 steps, but with searched label merges
        // the chain reaches a third non-0-round step — a strictly better
        // bound that *requires* a relax edge in its certificate.
        let mm = roundelim_problems::matching::maximal_matching(3).unwrap();
        let opts = SearchOptions {
            max_steps: 6,
            beam_width: 6,
            max_labels: 10,
            ..SearchOptions::default()
        };
        let with = autolb(&mm, &opts).unwrap();
        assert_eq!(with.verdict, Verdict::LowerBound { rounds: 3 });
        let cert = with.certificate.unwrap();
        assert!(
            cert.edges.iter().any(|e| matches!(e, Edge::Relax { .. })),
            "the depth-3 chain must use a searched relaxation"
        );
        let without = autolb(&mm, &SearchOptions { use_relaxations: false, ..opts }).unwrap();
        assert_eq!(without.verdict, Verdict::LowerBound { rounds: 2 });
    }

    #[test]
    fn sibling_pruning_preserves_the_search_exactly() {
        // With every explored problem inside the step bound (no oversized
        // sources, so the edge-row subset restriction never fires), the
        // pruned search must intern the same canonical class set and emit
        // the same verdict and certificate as the unpruned search — the
        // pruning only skips isomorphic sibling duplicates.
        let specs = [
            ("name: so\nnode: O O O | O O I | O I I\nedge: O I", 2),
            ("name: c3\nnode: 1 1 | 2 2 | 3 3\nedge: 1 2 | 1 3 | 2 3", 1),
            ("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1", 2),
        ];
        for (text, steps) in specs {
            let p = Problem::parse(text).unwrap();
            let base = SearchOptions {
                max_steps: steps,
                beam_width: 6,
                max_labels: 16,
                threads: 1,
                prune_siblings: false,
                ..SearchOptions::default()
            };
            let unpruned = autolb(&p, &base).unwrap();
            let pruned =
                autolb(&p, &SearchOptions { prune_siblings: true, ..base.clone() }).unwrap();
            assert_eq!(pruned.verdict, unpruned.verdict, "{text}");
            assert_eq!(pruned.certificate, unpruned.certificate, "{text}");
            assert_eq!(
                pruned.stats.cache.classes, unpruned.stats.cache.classes,
                "{text}: class sets diverged"
            );
        }
    }

    #[test]
    fn depth_budget_yields_a_partial_lower_bound() {
        let opts = SearchOptions { max_steps: 0, ..SearchOptions::default() };
        let out = autolb(&so3(), &opts).unwrap();
        assert_eq!(out.verdict, Verdict::LowerBound { rounds: 0 });
        out.certificate.unwrap().verify().unwrap();
    }
}
