//! Canonical-form memo cache: the node store of the search graph.
//!
//! Every problem the search touches is interned here, deduplicated up to
//! isomorphism so isomorphic problems share one node. Small problems are
//! keyed by the exact [`roundelim_core::iso::canonical_key`]; for large
//! alphabets (where the canonical permutation enumeration gets expensive —
//! the speedup transform produces highly symmetric 15+-label problems) the
//! key drops to the cheap [`roundelim_core::iso::signature_profile`]
//! invariant and collisions inside a bucket are resolved with
//! [`are_isomorphic`]. Problems with different label counts are never
//! isomorphic, so the two key kinds never need to agree with each other.
//!
//! Two layers keep interning off the hot path:
//!
//! * a **fingerprint index** ([`fingerprint`], [`CanonCache::intern_fingerprinted`]):
//!   a 64-bit digest of the refined isomorphism invariants probed *before*
//!   any canonical key is computed, so re-derived classes (most relax
//!   candidates) dedup with one short isomorphism check instead of a full
//!   canonical-form enumeration;
//! * a **process-wide `full_step` memo** ([`full_step_cached`]) keyed by
//!   the hybrid [`dedup_key`] hash and resolved by exact problem equality,
//!   so repeated searches in one process (sweeps, benches, the CLI) never
//!   recompute a speedup they have already taken.
//!
//! Per node the cache also memoizes the two expensive per-problem queries
//! the search repeats: the [`full_step`] successor (by node id, so a whole
//! isomorphism class pays for one speedup computation) and 0-round
//! solvability per model.

use crate::failpoint;
use roundelim_core::error::{Error, Result};
use roundelim_core::iso::are_isomorphic;
use roundelim_core::problem::Problem;
use roundelim_core::sequence::ZeroRoundModel;
use roundelim_core::speedup::full_step;
use roundelim_core::zero_round::{zero_round_oriented, zero_round_pn};
use roundelim_obs as obs;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The cache key: core's hybrid isomorphism-dedup key (exact canonical
/// form for small alphabets, the cheap signature-profile invariant above).
pub use roundelim_core::iso::DedupKey as CacheKey;

/// Computes the cache key of a problem (core's [`roundelim_core::iso::dedup_key`]).
pub use roundelim_core::iso::dedup_key as cache_key;

/// Identifier of an interned problem (an isomorphism class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
struct Entry {
    /// The first concrete representative that reached this class.
    problem: Problem,
    /// Memoized [`full_step`] successor (and the derived problem itself,
    /// which may differ from the successor class representative by a label
    /// renaming — certificates need the concrete derived problem).
    step: Option<(NodeId, Problem)>,
    /// Memoized 0-round verdicts, one slot per [`ZeroRoundModel`].
    zero_round: [Option<bool>; 2],
}

/// Cache counters, reported in search outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Interned problems that were new (distinct isomorphism classes).
    pub classes: usize,
    /// Intern calls answered by an existing class.
    pub dedup_hits: usize,
    /// Fingerprint/coarse-bucket collisions resolved by an isomorphism
    /// search.
    pub iso_resolutions: usize,
    /// `full_step` computations avoided by the memo.
    pub step_hits: usize,
    /// `full_step` computations performed.
    pub step_misses: usize,
}

/// Cheap isomorphism-invariant digest (re-exported from core's `iso`,
/// which owns the refined-hash machinery it must stay in lockstep with).
pub use roundelim_core::iso::fingerprint;

/// The canonical-form cache (see module docs).
#[derive(Debug, Default)]
pub struct CanonCache {
    /// Exact buckets hold one class; coarse buckets may hold several.
    ids: HashMap<CacheKey, Vec<NodeId>>,
    /// Fingerprint index over interned classes (collisions resolved by
    /// isomorphism; only classes interned through
    /// [`CanonCache::intern_fingerprinted`] are guaranteed present).
    fps: HashMap<u64, Vec<NodeId>>,
    entries: Vec<Entry>,
    /// Hit/miss counters.
    pub stats: CacheStats,
}

impl CanonCache {
    /// An empty cache.
    pub fn new() -> CanonCache {
        CanonCache::default()
    }

    /// Number of interned isomorphism classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Interns a problem, returning its class id and whether the class is
    /// new. The first problem to reach a class stays its representative.
    pub fn intern(&mut self, p: Problem) -> (NodeId, bool) {
        let key = cache_key(&p);
        let (id, back) = self.intern_keyed(key, p);
        (id, back.is_none())
    }

    /// [`CanonCache::intern`] with a caller-supplied key (the search
    /// computes keys for candidate batches on worker threads, then interns
    /// sequentially so ids are deterministic). On dedup the problem is
    /// handed back to the caller (`Some`); a new class consumes it
    /// (`None`) — no clone either way.
    pub fn intern_keyed(&mut self, key: CacheKey, p: Problem) -> (NodeId, Option<Problem>) {
        let exact = matches!(key, CacheKey::Exact(_));
        let bucket = self.ids.entry(key).or_default();
        for &id in bucket.iter() {
            if exact {
                self.stats.dedup_hits += 1;
                return (id, Some(p));
            }
            self.stats.iso_resolutions += 1;
            let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Canon);
            if are_isomorphic(&self.entries[id.index()].problem, &p) {
                self.stats.dedup_hits += 1;
                return (id, Some(p));
            }
        }
        failpoint::hit("cache-insert");
        let id = NodeId(u32::try_from(self.entries.len()).expect("node count fits u32"));
        bucket.push(id);
        self.entries.push(Entry { problem: p, step: None, zero_round: [None, None] });
        self.stats.classes += 1;
        (id, None)
    }

    /// Interns through the fingerprint index: if an isomorphic class is
    /// already indexed under `fp`, dedup costs one isomorphism check and
    /// **no canonical key is ever computed** — the saving that makes the
    /// relax closure affordable, since most relax candidates re-derive
    /// known classes. Falls back to the keyed path (and registers the
    /// fingerprint) on a miss. Same return convention as
    /// [`CanonCache::intern_keyed`].
    ///
    /// Every intern bumps the `cache.intern_hits`/`cache.intern_misses`
    /// registry counters; while profiling or tracing is armed the
    /// per-intern latency also lands in `cache.intern_hit_ns` /
    /// `cache.intern_miss_ns` (the canonical-cache hit/miss latency
    /// histograms).
    pub fn intern_fingerprinted(&mut self, fp: u64, p: Problem) -> (NodeId, Option<Problem>) {
        let watch = obs::armed().then(obs::time::Stopwatch::start);
        let out = self.intern_fingerprinted_inner(fp, p);
        let metrics = intern_metrics();
        let (count, latency) = if out.1.is_some() {
            (metrics.hits, metrics.hit_ns)
        } else {
            (metrics.misses, metrics.miss_ns)
        };
        count.incr();
        if let Some(watch) = watch {
            latency.record(watch.elapsed_ns());
        }
        out
    }

    fn intern_fingerprinted_inner(&mut self, fp: u64, p: Problem) -> (NodeId, Option<Problem>) {
        if let Some(ids) = self.fps.get(&fp) {
            for &id in ids {
                self.stats.iso_resolutions += 1;
                let iso = {
                    let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Canon);
                    are_isomorphic(&self.entries[id.index()].problem, &p)
                };
                if iso {
                    self.stats.dedup_hits += 1;
                    return (id, Some(p));
                }
            }
        }
        let key = {
            let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Canon);
            cache_key(&p)
        };
        let (id, back) = self.intern_keyed(key, p);
        let bucket = self.fps.entry(fp).or_default();
        if !bucket.contains(&id) {
            bucket.push(id);
        }
        (id, back)
    }

    /// Interns a whole wave of fingerprinted candidates at once, resolving
    /// them **in parallel across fingerprint shards** and then assigning
    /// `NodeId`s in a deterministic sequential pass in item order.
    ///
    /// Correctness of the sharding: [`fingerprint`] is an isomorphism
    /// invariant, so two isomorphic candidates always carry the same
    /// fingerprint and land in the same shard (`fp % shards`) — shard-local
    /// dedup against the frozen pre-wave cache plus the shard's own earlier
    /// candidates is therefore complete, and the dup/new decision for every
    /// item is independent of both the shard count and the schedule. The
    /// commit pass then replays exactly the sequential
    /// [`CanonCache::intern_fingerprinted`] effects (id allocation, bucket
    /// registration order, `cache-insert` failpoints, dedup counters) in
    /// item order, so the resulting cache — and every id handed back — is
    /// bit-identical to interning the items one by one on one thread.
    ///
    /// Return convention per item matches [`CanonCache::intern_keyed`]:
    /// a dup hands the probe problem back (`Some`), a new class consumes
    /// it (`None`).
    pub fn intern_wave(
        &mut self,
        items: Vec<(u64, Problem)>,
        threads: usize,
        shards: usize,
    ) -> Vec<(NodeId, Option<Problem>)> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let shards = shards.max(1);
        // Partition by fingerprint shard; item order is preserved within a
        // shard, so each shard worker sees its items in global item order.
        let mut split: Vec<Vec<(usize, u64, Problem)>> = (0..shards).map(|_| Vec::new()).collect();
        for (idx, (fp, p)) in items.into_iter().enumerate() {
            split[(fp % shards as u64) as usize].push((idx, fp, p));
        }
        // Phase 1 (parallel): resolve every shard against the frozen cache.
        // Tasks own their item lists behind a claim Mutex so the problems
        // can be moved, not cloned, into the resolution.
        let frozen = &*self;
        type ShardTask = Mutex<Option<Vec<(usize, u64, Problem)>>>;
        let tasks: Vec<ShardTask> = split.into_iter().map(|list| Mutex::new(Some(list))).collect();
        let resolved: Vec<WaveShard> = roundelim_core::par::par_map(&tasks, threads, |task| {
            let list = task.lock().expect("shard task slot").take().expect("claimed once");
            resolve_wave_shard(frozen, list)
        });
        // Phase 2 (sequential, item order): allocate ids and commit.
        let mut per_item: Vec<Option<(usize, WaveRes)>> = (0..n).map(|_| None).collect();
        let mut fresh: Vec<Vec<Option<(Problem, u64, CacheKey)>>> = Vec::with_capacity(shards);
        let mut assigned: Vec<Vec<Option<NodeId>>> = Vec::with_capacity(shards);
        for (s, shard) in resolved.into_iter().enumerate() {
            self.stats.iso_resolutions += shard.iso_resolutions;
            self.stats.dedup_hits += shard.dedup_hits;
            assigned.push(vec![None; shard.fresh.len()]);
            fresh.push(shard.fresh.into_iter().map(Some).collect());
            for (idx, res) in shard.out {
                per_item[idx] = Some((s, res));
            }
        }
        let mut out = Vec::with_capacity(n);
        for slot in per_item {
            let (s, res) = slot.expect("every wave item resolves");
            match res {
                WaveRes::Dup { id, fp, via_key, problem } => {
                    if via_key {
                        self.register_fp(fp, id);
                    }
                    out.push((id, Some(problem)));
                }
                WaveRes::DupFresh { f, fp, via_key, problem } => {
                    let id = assigned[s][f].expect("fresh classes precede their dups");
                    if via_key {
                        self.register_fp(fp, id);
                    }
                    out.push((id, Some(problem)));
                }
                WaveRes::New { f } => {
                    let (problem, fp, key) =
                        fresh[s][f].take().expect("one New item per fresh class");
                    failpoint::hit("cache-insert");
                    let id =
                        NodeId(u32::try_from(self.entries.len()).expect("node count fits u32"));
                    self.ids.entry(key).or_default().push(id);
                    self.entries.push(Entry { problem, step: None, zero_round: [None, None] });
                    self.stats.classes += 1;
                    self.register_fp(fp, id);
                    assigned[s][f] = Some(id);
                    out.push((id, None));
                }
            }
        }
        out
    }

    /// Registers `id` in the fingerprint bucket of `fp` unless already
    /// present — the fallback registration of the fingerprinted intern path.
    fn register_fp(&mut self, fp: u64, id: NodeId) {
        let bucket = self.fps.entry(fp).or_default();
        if !bucket.contains(&id) {
            bucket.push(id);
        }
    }

    /// The representative problem of a class.
    pub fn problem(&self, id: NodeId) -> &Problem {
        &self.entries[id.index()].problem
    }

    /// Memoized 0-round solvability of a class under `model`. Sound across
    /// the class because 0-round solvability is isomorphism-invariant.
    pub fn is_zero_round(&mut self, id: NodeId, model: ZeroRoundModel) -> bool {
        let slot = match model {
            ZeroRoundModel::PlainPn => 0,
            ZeroRoundModel::Oriented => 1,
        };
        if let Some(v) = self.entries[id.index()].zero_round[slot] {
            return v;
        }
        let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::ZeroRound);
        let p = &self.entries[id.index()].problem;
        let v = match model {
            ZeroRoundModel::PlainPn => zero_round_pn(p).is_some(),
            ZeroRoundModel::Oriented => zero_round_oriented(p).is_some(),
        };
        self.entries[id.index()].zero_round[slot] = Some(v);
        v
    }

    /// Memoized speedup: the [`full_step`] successor class of `id`, plus
    /// the concrete derived problem (exactly `full_step(problem(id))`,
    /// recorded so certificate chains can splice it in verbatim).
    ///
    /// # Errors
    ///
    /// Propagates speedup errors (e.g. alphabet overflow).
    pub fn step(&mut self, id: NodeId) -> Result<(NodeId, Problem)> {
        if let Some(succ) = self.step_succ(id) {
            let derived = self.step_derived(id).expect("memo present").clone();
            return Ok((succ, derived));
        }
        let derived = full_step_cached(&self.entries[id.index()].problem)?;
        let key = cache_key(&derived);
        let (succ, _) = self.record_step(id, derived.clone(), key);
        Ok((succ, derived))
    }

    /// The memoized step successor class, if it has been computed. Cheap
    /// (no problem clone) — fetch the derived problem separately with
    /// [`CanonCache::step_derived`] on the rare paths that need it.
    pub fn step_succ(&mut self, id: NodeId) -> Option<NodeId> {
        let memo = self.entries[id.index()].step.as_ref().map(|(succ, _)| *succ);
        if memo.is_some() {
            self.stats.step_hits += 1;
        }
        memo
    }

    /// The memoized concrete derived problem of `id`'s step, if computed.
    pub fn step_derived(&self, id: NodeId) -> Option<&Problem> {
        self.entries[id.index()].step.as_ref().map(|(_, derived)| derived)
    }

    /// Records a step result the caller computed (with its cache key) on a
    /// worker thread; interns the derived problem and fills the memo.
    /// Returns the successor class and whether it is new.
    pub fn record_step(&mut self, id: NodeId, derived: Problem, key: CacheKey) -> (NodeId, bool) {
        self.stats.step_misses += 1;
        let (succ, back) = self.intern_keyed(key, derived.clone());
        self.entries[id.index()].step = Some((succ, derived));
        (succ, back.is_none())
    }

    /// A deep snapshot of the cache, for checkpointing. [`CanonCache::restore`]
    /// rebuilds a behaviorally identical cache from it.
    pub fn snapshot(&self) -> CacheSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| (e.problem.clone(), e.step.clone(), e.zero_round))
            .collect();
        // The fingerprint index is exported verbatim (sorted by fingerprint
        // for stable serialization bytes): it cannot be rebuilt from the
        // entries alone, because only classes that were interned through
        // the fingerprint path are registered in it.
        let mut fps: Vec<(u64, Vec<NodeId>)> =
            self.fps.iter().map(|(fp, ids)| (*fp, ids.clone())).collect();
        fps.sort_unstable_by_key(|(fp, _)| *fp);
        CacheSnapshot { entries, fps, stats: self.stats }
    }

    /// Rebuilds a cache from a snapshot. The canonical-key buckets are
    /// recomputed from the representatives — iterating entries in id order
    /// reproduces the original bucket order, since buckets grow in id order
    /// at intern time — while the fingerprint index and the counters are
    /// restored verbatim. The result deduplicates, memoizes, and counts
    /// exactly like the cache the snapshot was taken from.
    ///
    /// # Errors
    ///
    /// Rejects snapshots with out-of-range node ids.
    pub fn restore(snap: CacheSnapshot) -> Result<CanonCache> {
        let n = snap.entries.len();
        let bad = |reason: String| Error::Inconsistent { reason };
        let mut cache = CanonCache { stats: snap.stats, ..CanonCache::default() };
        for (i, (problem, step, zero_round)) in snap.entries.into_iter().enumerate() {
            let id = NodeId(
                u32::try_from(i).map_err(|_| bad("cache snapshot: too many entries".into()))?,
            );
            if let Some((succ, _)) = &step {
                if succ.index() >= n {
                    return Err(bad(format!(
                        "cache snapshot: entry {i} has step successor {} out of range",
                        succ.0
                    )));
                }
            }
            let key = cache_key(&problem);
            cache.ids.entry(key).or_default().push(id);
            cache.entries.push(Entry { problem, step, zero_round });
        }
        for (fp, ids) in snap.fps {
            if let Some(id) = ids.iter().find(|id| id.index() >= n) {
                return Err(bad(format!(
                    "cache snapshot: fingerprint {fp:#x} indexes node {} out of range",
                    id.0
                )));
            }
            cache.fps.insert(fp, ids);
        }
        Ok(cache)
    }
}

/// Per-item resolution of a wave candidate (see [`CanonCache::intern_wave`]).
enum WaveRes {
    /// Isomorphic to a pre-wave class. `via_key` records that the match
    /// came through the keyed fallback, so the commit pass must replay the
    /// fingerprint-bucket registration the sequential path performs there.
    Dup { id: NodeId, fp: u64, via_key: bool, problem: Problem },
    /// Isomorphic to a class first created by an *earlier item of this
    /// wave* (same shard by fingerprint invariance); `f` indexes the
    /// shard's `fresh` table.
    DupFresh { f: usize, fp: u64, via_key: bool, problem: Problem },
    /// First representative of a brand-new class, parked in the shard's
    /// `fresh` table until the commit pass assigns its id.
    New { f: usize },
}

/// A resolved reference inside a shard's local indexes: either a pre-wave
/// class or a fresh one from this wave.
#[derive(Clone, Copy)]
enum WaveRef {
    Global(NodeId),
    Fresh(usize),
}

/// The output of resolving one fingerprint shard of a wave.
struct WaveShard {
    /// `(global item index, resolution)` in shard (= item) order.
    out: Vec<(usize, WaveRes)>,
    /// Representatives of classes first seen in this wave:
    /// `(problem, fingerprint, cache key)`, in creation order.
    fresh: Vec<(Problem, u64, CacheKey)>,
    /// Stat deltas, summed into [`CacheStats`] at commit (sums are
    /// order-independent, so the totals stay deterministic).
    iso_resolutions: usize,
    dedup_hits: usize,
}

/// Working state of one shard's resolution: the fresh-class table plus the
/// wave-local growth of the fingerprint and keyed indexes. Fingerprint
/// buckets gain both fresh classes and key-path dup registrations; keyed
/// buckets only ever gain fresh classes (a dup never extends one).
#[derive(Default)]
struct ShardState {
    fresh: Vec<(Problem, u64, CacheKey)>,
    new_fps: HashMap<u64, Vec<WaveRef>>,
    new_keys: HashMap<CacheKey, Vec<usize>>,
    iso_resolutions: usize,
    dedup_hits: usize,
}

impl ShardState {
    fn target<'a>(&'a self, cache: &'a CanonCache, r: WaveRef) -> &'a Problem {
        match r {
            WaveRef::Global(id) => &cache.entries[id.index()].problem,
            WaveRef::Fresh(f) => &self.fresh[f].0,
        }
    }

    /// Resolves one candidate, replicating the probe sequence of
    /// [`CanonCache::intern_fingerprinted`] exactly: fingerprint bucket
    /// first (frozen members in registration order, then this wave's),
    /// canonical key computed only on a fingerprint miss, keyed buckets
    /// likewise frozen-then-fresh with exact keys deduping on the first
    /// member and coarse buckets resolved by isomorphism.
    fn resolve(&mut self, cache: &CanonCache, fp: u64, p: Problem) -> WaveRes {
        let frozen_fp = cache.fps.get(&fp).map(Vec::as_slice).unwrap_or_default();
        let mut refs: Vec<WaveRef> = frozen_fp.iter().map(|&id| WaveRef::Global(id)).collect();
        if let Some(local) = self.new_fps.get(&fp) {
            refs.extend(local.iter().copied());
        }
        for r in refs {
            self.iso_resolutions += 1;
            let iso = {
                let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Canon);
                are_isomorphic(self.target(cache, r), &p)
            };
            if iso {
                self.dedup_hits += 1;
                return match r {
                    WaveRef::Global(id) => WaveRes::Dup { id, fp, via_key: false, problem: p },
                    WaveRef::Fresh(f) => WaveRes::DupFresh { f, fp, via_key: false, problem: p },
                };
            }
        }
        let key = {
            let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Canon);
            cache_key(&p)
        };
        let exact = matches!(key, CacheKey::Exact(_));
        let frozen_key = cache.ids.get(&key).map(Vec::as_slice).unwrap_or_default();
        let mut krefs: Vec<WaveRef> = frozen_key.iter().map(|&id| WaveRef::Global(id)).collect();
        if let Some(local) = self.new_keys.get(&key) {
            krefs.extend(local.iter().map(|&f| WaveRef::Fresh(f)));
        }
        for r in krefs {
            let hit = exact || {
                self.iso_resolutions += 1;
                let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Canon);
                are_isomorphic(self.target(cache, r), &p)
            };
            if hit {
                self.dedup_hits += 1;
                return match r {
                    WaveRef::Global(id) => WaveRes::Dup { id, fp, via_key: true, problem: p },
                    WaveRef::Fresh(f) => WaveRes::DupFresh { f, fp, via_key: true, problem: p },
                };
            }
        }
        // Genuinely new class: park it; the commit pass allocates its id.
        let f = self.fresh.len();
        self.new_keys.entry(key.clone()).or_default().push(f);
        self.new_fps.entry(fp).or_default().push(WaveRef::Fresh(f));
        self.fresh.push((p, fp, key));
        WaveRes::New { f }
    }
}

/// Resolves one shard's candidates against the frozen pre-wave cache plus
/// the shard's own earlier candidates (see [`ShardState::resolve`]).
fn resolve_wave_shard(cache: &CanonCache, items: Vec<(usize, u64, Problem)>) -> WaveShard {
    let metrics = intern_metrics();
    let mut st = ShardState::default();
    let mut out = Vec::with_capacity(items.len());
    for (idx, fp, p) in items {
        let watch = obs::armed().then(obs::time::Stopwatch::start);
        let res = st.resolve(cache, fp, p);
        let (count, latency) = if matches!(res, WaveRes::New { .. }) {
            (metrics.misses, metrics.miss_ns)
        } else {
            (metrics.hits, metrics.hit_ns)
        };
        count.incr();
        if let Some(watch) = watch {
            latency.record(watch.elapsed_ns());
        }
        out.push((idx, res));
    }
    WaveShard {
        out,
        fresh: st.fresh,
        iso_resolutions: st.iso_resolutions,
        dedup_hits: st.dedup_hits,
    }
}

/// One class in a [`CacheSnapshot`]: the representative problem, the step
/// memo (successor class plus the concrete derived problem), and the
/// per-model 0-round memos.
pub type SnapshotEntry = (Problem, Option<(NodeId, Problem)>, [Option<bool>; 2]);

/// A deep, serializable snapshot of a [`CanonCache`]
/// (see [`CanonCache::snapshot`]).
#[derive(Debug, Clone)]
pub struct CacheSnapshot {
    /// Per class, in id order (see [`SnapshotEntry`]).
    pub entries: Vec<SnapshotEntry>,
    /// The fingerprint index, sorted by fingerprint; ids inside a bucket
    /// keep their registration order.
    pub fps: Vec<(u64, Vec<NodeId>)>,
    /// The counters at snapshot time.
    pub stats: CacheStats,
}

/// Entry cap of the process-wide [`full_step_cached`] memo; beyond it new
/// results are computed but not stored (the cap bounds memory for
/// long-lived processes, and the first thousand problems cover every
/// sweep/bench workload by a wide margin).
const STEP_MEMO_CAP: usize = 1024;

/// Registry handles for the cache probes, resolved once so the hot
/// paths pay one relaxed `fetch_add` per event instead of a registry
/// lock.
struct CacheMetrics {
    hits: &'static obs::metrics::Counter,
    misses: &'static obs::metrics::Counter,
    hit_ns: &'static obs::metrics::Histogram,
    miss_ns: &'static obs::metrics::Histogram,
}

fn intern_metrics() -> &'static CacheMetrics {
    static M: OnceLock<CacheMetrics> = OnceLock::new();
    M.get_or_init(|| CacheMetrics {
        hits: obs::metrics::counter("cache.intern_hits"),
        misses: obs::metrics::counter("cache.intern_misses"),
        hit_ns: obs::metrics::histogram("cache.intern_hit_ns"),
        miss_ns: obs::metrics::histogram("cache.intern_miss_ns"),
    })
}

fn step_memo_metrics() -> &'static CacheMetrics {
    static M: OnceLock<CacheMetrics> = OnceLock::new();
    M.get_or_init(|| CacheMetrics {
        hits: obs::metrics::counter("cache.step_memo_hits"),
        misses: obs::metrics::counter("cache.step_memo_misses"),
        hit_ns: obs::metrics::histogram("cache.step_memo_hit_ns"),
        miss_ns: obs::metrics::histogram("cache.step_memo_miss_ns"),
    })
}

/// Process-wide exact `full_step` memo, keyed by the hash of the hybrid
/// [`dedup_key`] and resolved by **exact problem equality** (an isomorphic
/// hit is not enough: the search and the certificates need the concrete
/// derived problem of *this* representative, names included).
///
/// This is what makes repeated searches in one process — `autolb --sweep`
/// over the registry, bench iterations, chained CLI searches — pay for
/// each distinct speedup once. Within a single search the per-class memo
/// in [`CanonCache::step`] already deduplicates, so this layer only fires
/// across searches.
///
/// # Errors
///
/// Propagates speedup errors (e.g. alphabet overflow). Errors are not
/// memoized.
pub fn full_step_cached(p: &Problem) -> Result<Problem> {
    /// Fingerprint-bucketed (source, derived) pairs.
    type StepMemo = HashMap<u64, Vec<(Problem, Problem)>>;
    static MEMO: OnceLock<Mutex<StepMemo>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    let fp = fingerprint(p);
    let metrics = step_memo_metrics();
    let watch = obs::armed().then(obs::time::Stopwatch::start);
    {
        let guard = memo.lock().expect("step memo poisoned");
        if let Some(bucket) = guard.get(&fp) {
            for (src, derived) in bucket {
                if src == p {
                    metrics.hits.incr();
                    if let Some(watch) = watch {
                        metrics.hit_ns.record(watch.elapsed_ns());
                    }
                    return Ok(derived.clone());
                }
            }
        }
    }
    metrics.misses.incr();
    let _sp = roundelim_core::profile::span(roundelim_core::profile::Stage::Step);
    let derived = full_step(p)?.problem().clone();
    if let Some(watch) = watch {
        metrics.miss_ns.record(watch.elapsed_ns());
    }
    let mut guard = memo.lock().expect("step memo poisoned");
    if guard.values().map(Vec::len).sum::<usize>() < STEP_MEMO_CAP {
        let bucket = guard.entry(fp).or_default();
        if !bucket.iter().any(|(src, _)| src == p) {
            bucket.push((p.clone(), derived.clone()));
        }
    }
    Ok(derived)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sc() -> Problem {
        Problem::parse("name: sc\nnode: 1 0 0\nedge: 0 0 | 0 1").unwrap()
    }

    #[test]
    fn isomorphic_problems_share_a_class() {
        let mut cache = CanonCache::new();
        let (a, new_a) = cache.intern(sc());
        let renamed = Problem::parse("name: r\nnode: B A A\nedge: A A | A B").unwrap();
        let (b, new_b) = cache.intern(renamed);
        assert!(new_a && !new_b);
        assert_eq!(a, b);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats.dedup_hits, 1);
        // The representative is the first problem interned.
        assert_eq!(cache.problem(a).name(), "sc");
    }

    #[test]
    fn large_problems_use_coarse_keys_and_still_dedup() {
        // 12 labels > CANON_MAX_LABELS: a renamed copy must still dedup,
        // via the coarse bucket + isomorphism resolution.
        let mk = |names: &[&str]| {
            let node = names.chunks(2).map(|c| c.join(" ")).collect::<Vec<_>>().join(" | ");
            let edge = names.windows(2).map(|c| c.join(" ")).collect::<Vec<_>>().join(" | ");
            Problem::parse(&format!("name: big\nnode: {node}\nedge: {edge}")).unwrap()
        };
        let names: Vec<&str> = vec!["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"];
        let renamed: Vec<&str> =
            vec!["x0", "x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9", "xa", "xb"];
        assert!(matches!(cache_key(&mk(&names)), CacheKey::Coarse { .. }));
        let mut cache = CanonCache::new();
        let (a, _) = cache.intern(mk(&names));
        let (b, new_b) = cache.intern(mk(&renamed));
        assert_eq!(a, b);
        assert!(!new_b);
    }

    #[test]
    fn fingerprint_intern_skips_canonical_keys_on_dedup() {
        let mut cache = CanonCache::new();
        let p = sc();
        let fp = fingerprint(&p);
        let (a, back_a) = cache.intern_fingerprinted(fp, p);
        assert!(back_a.is_none(), "first intern consumes the problem");
        // A renamed copy has the same fingerprint and must dedup through
        // the fingerprint index, returning the probe problem.
        let renamed = Problem::parse("name: r\nnode: B A A\nedge: A A | A B").unwrap();
        let fp2 = fingerprint(&renamed);
        assert_eq!(fp, fp2, "fingerprints are isomorphism-invariant");
        let (b, back_b) = cache.intern_fingerprinted(fp2, renamed);
        assert_eq!(a, b);
        assert!(back_b.is_some(), "dedup hands the problem back");
        assert_eq!(cache.len(), 1);
        assert!(cache.stats.iso_resolutions >= 1);
    }

    #[test]
    fn fingerprint_index_and_keyed_intern_agree() {
        // A class first interned through the keyed path must still dedup
        // when re-interned through the fingerprint path (fallback probes
        // the keyed buckets).
        let mut cache = CanonCache::new();
        let (a, _) = cache.intern(sc());
        let (b, back) = cache.intern_fingerprinted(fingerprint(&sc()), sc());
        assert_eq!(a, b);
        assert!(back.is_some());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn wave_intern_matches_sequential_and_every_shard_count() {
        // A wave with in-wave duplicates (renamed copies), cross-wave
        // duplicates (classes already interned), and fresh classes. The
        // wave interner must hand back exactly what one-at-a-time
        // `intern_fingerprinted` does — same ids, same dup/new split, same
        // final cache — at every thread and shard count.
        let renamed = Problem::parse("name: r\nnode: B A A\nedge: A A | A B").unwrap();
        let trivial = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let two = Problem::parse("name: two\nnode: A A A | B B B\nedge: A B").unwrap();
        let wave: Vec<Problem> =
            vec![sc(), trivial.clone(), renamed.clone(), two.clone(), trivial, sc(), renamed, two];
        let items = |w: &[Problem]| -> Vec<(u64, Problem)> {
            w.iter().map(|p| (fingerprint(p), p.clone())).collect()
        };

        // Reference: sequential fingerprinted interning into a pre-seeded
        // cache (one class interned before the wave, so frozen-vs-fresh
        // dedup is exercised too).
        let mut reference = CanonCache::new();
        reference.intern_fingerprinted(fingerprint(&sc()), sc());
        let expect: Vec<(NodeId, bool)> = {
            let mut c = CanonCache::restore(reference.snapshot()).unwrap();
            items(&wave)
                .into_iter()
                .map(|(fp, p)| {
                    let (id, back) = c.intern_fingerprinted(fp, p);
                    (id, back.is_none())
                })
                .collect()
        };
        for threads in [1, 2, 4] {
            for shards in [1, 4, 64] {
                let mut c = CanonCache::restore(reference.snapshot()).unwrap();
                let got: Vec<(NodeId, bool)> = c
                    .intern_wave(items(&wave), threads, shards)
                    .into_iter()
                    .map(|(id, back)| (id, back.is_none()))
                    .collect();
                // 3 classes: sc (pre-seeded), trivial, two; the other 6
                // wave items dedup (renamed ≅ sc).
                assert_eq!(got, expect, "threads={threads} shards={shards}");
                assert_eq!(c.len(), 3, "threads={threads} shards={shards}");
                assert_eq!(c.stats.classes, 3);
                assert_eq!(c.stats.dedup_hits, 6);
                // A later intern through either path still lands on the
                // same classes: buckets were registered exactly as the
                // sequential path would have.
                let (rid, back) = c.intern_fingerprinted(fingerprint(&sc()), sc());
                assert_eq!(rid, NodeId(0));
                assert!(back.is_some());
            }
        }
    }

    #[test]
    fn step_is_memoized() {
        let mut cache = CanonCache::new();
        let (id, _) = cache.intern(sc());
        let (s1, d1) = cache.step(id).unwrap();
        let (s2, d2) = cache.step(id).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(d1, d2);
        assert_eq!(cache.stats.step_misses, 1);
        assert_eq!(cache.stats.step_hits, 1);
        // §4.4: the derived problem of sinkless coloring is isomorphic to it.
        assert_eq!(s1, id);
    }

    #[test]
    fn process_step_memo_returns_exact_results() {
        let p = sc();
        let a = full_step_cached(&p).unwrap();
        let b = full_step_cached(&p).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, full_step(&p).unwrap().problem().clone());
    }

    #[test]
    fn snapshot_restore_preserves_behavior_and_counters() {
        let mut cache = CanonCache::new();
        let (id, _) = cache.intern(sc());
        cache.step(id).unwrap();
        assert!(!cache.is_zero_round(id, ZeroRoundModel::Oriented));
        let trivial = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let fp = fingerprint(&trivial);
        cache.intern_fingerprinted(fp, trivial.clone());

        let mut restored = CanonCache::restore(cache.snapshot()).unwrap();
        assert_eq!(restored.len(), cache.len());
        assert_eq!(restored.stats, cache.stats);
        // Dedup still lands on the original ids through both intern paths.
        let renamed = Problem::parse("name: r\nnode: B A A\nedge: A A | A B").unwrap();
        let (rid, back) = restored.intern_keyed(cache_key(&renamed), renamed);
        assert_eq!(rid, id);
        assert!(back.is_some());
        let (tid, tback) = restored.intern_fingerprinted(fp, trivial);
        assert_eq!(tid.index(), 1);
        assert!(tback.is_some());
        // The step memo came along: no recomputation.
        let misses = restored.stats.step_misses;
        let (succ, _) = restored.step(id).unwrap();
        assert_eq!(succ, id);
        assert_eq!(restored.stats.step_misses, misses);
        // So did the 0-round memo.
        assert!(!restored.is_zero_round(id, ZeroRoundModel::Oriented));
    }

    #[test]
    fn restore_rejects_out_of_range_ids() {
        let mut cache = CanonCache::new();
        let (id, _) = cache.intern(sc());
        cache.step(id).unwrap();
        let mut snap = cache.snapshot();
        snap.entries[0].1.as_mut().unwrap().0 = NodeId(99);
        assert!(CanonCache::restore(snap).is_err());
        let mut snap2 = cache.snapshot();
        snap2.fps.push((7, vec![NodeId(42)]));
        assert!(CanonCache::restore(snap2).is_err());
    }

    #[test]
    fn zero_round_is_memoized_per_model() {
        let mut cache = CanonCache::new();
        let trivial = Problem::parse("name: t\nnode: X X X\nedge: X X").unwrap();
        let (id, _) = cache.intern(trivial);
        assert!(cache.is_zero_round(id, ZeroRoundModel::PlainPn));
        assert!(cache.is_zero_round(id, ZeroRoundModel::Oriented));
        let (sc_id, _) = cache.intern(sc());
        assert!(!cache.is_zero_round(sc_id, ZeroRoundModel::Oriented));
        assert!(!cache.is_zero_round(sc_id, ZeroRoundModel::Oriented)); // memo path
    }
}
