//! A minimal JSON value type with a writer and a parser.
//!
//! The workspace's offline `serde` stand-in ships trait bounds but no data
//! format, so the certificate files and the CLI's `--json` output are
//! produced by this hand-rolled implementation. It covers exactly the JSON
//! subset the subsystem emits: objects, arrays, strings, booleans, `null`,
//! and non-negative integers (every number in a certificate is an index or
//! a count).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (indices and counts only).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) so output is deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders the value as indented JSON (2-space indent).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, padc) = match indent {
            Some(w) => ("\n", " ".repeat(w * (level + 1)), " ".repeat(w * level)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(v) => {
                if v.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    e.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push(']');
            }
            Json::Obj(m) => {
                if m.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&padc);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => {
            *pos += 1;
            let mut m = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(m));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                m.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(m));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut v = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(v));
            }
            loop {
                v.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(v));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).expect("digits are utf8");
            s.parse::<u64>().map(Json::Num).map_err(|e| format!("bad number at byte {start}: {e}"))
        }
        Some(c) => Err(format!("unexpected byte `{}` at {}", *c as char, *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let hex4 = |pos: usize| -> Result<u32, String> {
                            let hex = b
                                .get(pos..pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_owned())?;
                            u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| "bad \\u escape".to_owned())?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape".to_owned())
                        };
                        let code = hex4(*pos + 1)?;
                        *pos += 4;
                        let scalar = if (0xd800..0xdc00).contains(&code) {
                            // High surrogate: a standards-compliant encoder
                            // follows it with a \uDC00–\uDFFF low half.
                            if b.get(*pos + 1..*pos + 3) != Some(b"\\u") {
                                return Err("lone high surrogate in \\u escape".to_owned());
                            }
                            let low = hex4(*pos + 3)?;
                            if !(0xdc00..0xe000).contains(&low) {
                                return Err("invalid low surrogate in \\u escape".to_owned());
                            }
                            *pos += 6;
                            0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00)
                        } else if (0xdc00..0xe000).contains(&code) {
                            return Err("lone low surrogate in \\u escape".to_owned());
                        } else {
                            code
                        };
                        s.push(char::from_u32(scalar).ok_or_else(|| "bad \\u escape".to_owned())?);
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Copy the full UTF-8 scalar starting at `c`.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or_else(|| format!("truncated utf8 at byte {}", *pos))?;
                s.push_str(
                    std::str::from_utf8(chunk)
                        .map_err(|_| format!("invalid utf8 at byte {}", *pos))?,
                );
                *pos += ch_len;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = Json::obj([
            ("name", Json::Str("a \"quoted\"\nline".into())),
            ("nums", Json::Arr(vec![Json::Num(0), Json::Num(42)])),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
        ]);
        for text in [v.to_string_compact(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("k", Json::Num(7))]);
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(7));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
        assert!(Json::Num(1).as_arr().is_none());
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert!(Json::Num(1).as_bool().is_none());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nope").is_err());
    }

    #[test]
    fn unicode_survives() {
        let v = Json::Str("Δ ≅ Ω".into());
        assert_eq!(Json::parse(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        // A standards-compliant ASCII encoder writes non-BMP characters as
        // surrogate pairs (e.g. python json.dumps with ensure_ascii=True).
        assert_eq!(Json::parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
        assert_eq!(Json::parse("\"\\u0394\"").unwrap(), Json::Str("Δ".into()));
        for lone in ["\"\\ud83d\"", "\"\\ude00\"", "\"\\ud83d\\u0041\"", "\"\\ud83d!\""] {
            assert!(Json::parse(lone).is_err(), "{lone} must be rejected");
        }
    }
}
