//! Certificate soundness: every certificate the search produces replays
//! green, every corrupted certificate is rejected, and the search outcome
//! is independent of the worker-thread count.

use proptest::prelude::*;
use roundelim_auto::certificate::{CertVerdict, Certificate, Edge};
use roundelim_auto::search::{autolb, autoub, SearchOptions, Verdict};
use roundelim_core::config::{all_multisets, Config};
use roundelim_core::constraint::Constraint;
use roundelim_core::label::{Alphabet, Label};
use roundelim_core::problem::Problem;

/// A random small problem: Δ ∈ {2,3}, 2–4 labels, random constraints
/// (the `tests/properties.rs` generator, scoped to search-sized inputs).
fn arb_problem() -> impl Strategy<Value = Problem> {
    (2usize..=3, 2usize..=4).prop_flat_map(|(delta, n_labels)| {
        let node_space = all_multisets(n_labels, delta);
        let edge_space = all_multisets(n_labels, 2);
        let node_sel = proptest::collection::vec(any::<bool>(), node_space.len());
        let edge_sel = proptest::collection::vec(any::<bool>(), edge_space.len());
        (Just(delta), Just(n_labels), node_sel, edge_sel).prop_filter_map(
            "nonempty constraints",
            |(delta, n_labels, ns, es)| {
                let node: Vec<Config> = all_multisets(n_labels, delta)
                    .into_iter()
                    .zip(&ns)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                let edge: Vec<Config> = all_multisets(n_labels, 2)
                    .into_iter()
                    .zip(&es)
                    .filter(|(_, &keep)| keep)
                    .map(|(c, _)| c)
                    .collect();
                if node.is_empty() || edge.is_empty() {
                    return None;
                }
                let alphabet = Alphabet::from_names((0..n_labels).map(|i| format!("L{i}"))).ok()?;
                let node = Constraint::from_configs(delta, node).ok()?;
                let edge = Constraint::from_configs(2, edge).ok()?;
                Problem::new("random", alphabet, node, edge).ok()
            },
        )
    })
}

fn small_budget() -> SearchOptions {
    SearchOptions {
        max_steps: 3,
        beam_width: 3,
        max_labels: 6,
        threads: 1,
        ..SearchOptions::default()
    }
}

/// Deterministic corruptions, each of which must be rejected by `verify`.
fn corruptions(cert: &Certificate) -> Vec<(&'static str, Certificate)> {
    let mut out = Vec::new();
    // Over-claim the verdict.
    let mut c = cert.clone();
    match &mut c.verdict {
        CertVerdict::LowerBound { rounds } => {
            *rounds = cert.steps() + 1;
            out.push(("overclaimed lower bound", c));
        }
        CertVerdict::Unbounded { cycle_start, .. } => {
            *cycle_start = cert.edges.len(); // out of range
            out.push(("cycle start out of range", c));
        }
        CertVerdict::UpperBound { rounds } => {
            if *rounds > 0 {
                *rounds -= 1; // under-claim: chain uses more steps than claimed
                out.push(("underclaimed upper bound", c));
            }
        }
    }
    // Break the chain shape.
    if !cert.problems.is_empty() {
        let mut c = cert.clone();
        c.problems.pop();
        out.push(("problem/edge count mismatch", c));
    }
    // Skip a step: splice a duplicate of Π₀ with a claimed step edge onto
    // the front. full_step renames every label (derived problems use
    // ⟨…⟩-names), so the replay comparison cannot accidentally pass.
    if !cert.edges.is_empty() {
        let mut c = cert.clone();
        c.problems.insert(1, c.problems[0].clone());
        c.edges.insert(0, Edge::Step);
        out.push(("skipped step", c));
    }
    // Wreck a witness map.
    if let Some(ix) =
        cert.edges.iter().position(|e| matches!(e, Edge::Relax { .. } | Edge::Harden { .. }))
    {
        let mut c = cert.clone();
        let wrong = vec![Label::from_index(usize::from(u16::MAX)); 1];
        match &mut c.edges[ix] {
            Edge::Relax { map } | Edge::Harden { map } => *map = wrong,
            Edge::Step => unreachable!(),
        }
        out.push(("wrong witness map", c));
    }
    if let CertVerdict::Unbounded { .. } = &cert.verdict {
        let mut c = cert.clone();
        if let CertVerdict::Unbounded { iso_map, .. } = &mut c.verdict {
            for l in iso_map.iter_mut() {
                *l = Label::from_index(0); // not a bijection (alphabets ≥ 2)
            }
        }
        out.push(("degenerate isomorphism witness", c));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every lower-bound search outcome carries a certificate that the
    /// independent verifier replays green — and whose JSON serialization
    /// round-trips losslessly.
    #[test]
    fn autolb_certificates_replay_green(p in arb_problem()) {
        let out = autolb(&p, &small_budget()).unwrap();
        let cert = out.certificate.expect("autolb always certifies something");
        cert.verify().unwrap();
        let back = Certificate::from_json(&cert.to_json()).unwrap();
        prop_assert_eq!(&back, &cert);
        back.verify().unwrap();
    }

    /// Same for the upper-bound direction (when it concludes).
    #[test]
    fn autoub_certificates_replay_green(p in arb_problem()) {
        let out = autoub(&p, &small_budget()).unwrap();
        if let Some(cert) = out.certificate {
            cert.verify().unwrap();
            let back = Certificate::from_json(&cert.to_json()).unwrap();
            prop_assert_eq!(&back, &cert);
        } else {
            prop_assert_eq!(out.verdict, Verdict::Inconclusive);
        }
    }

    /// Every deterministic corruption of a real certificate is rejected.
    #[test]
    fn corrupted_certificates_are_rejected(p in arb_problem()) {
        let out = autolb(&p, &small_budget()).unwrap();
        let cert = out.certificate.expect("autolb always certifies something");
        for (what, bad) in corruptions(&cert) {
            prop_assert!(bad.verify().is_err(), "corruption `{}` was accepted", what);
        }
    }

    /// The search verdict, certificate, and every effort counter are
    /// identical for every worker thread count (the determinism contract
    /// of the executor and the sharded wave interner).
    #[test]
    fn search_is_thread_count_invariant(p in arb_problem()) {
        let base = autolb(&p, &small_budget()).unwrap();
        for threads in [2usize, 4, 7] {
            let opts = SearchOptions { threads, ..small_budget() };
            let out = autolb(&p, &opts).unwrap();
            prop_assert_eq!(&out.verdict, &base.verdict);
            prop_assert_eq!(&out.certificate, &base.certificate);
            prop_assert_eq!(&out.stats, &base.stats);
        }
    }

    /// `NodeId` assignment — and with it the verdict and certificate — is
    /// identical at every wave-interner shard count (isomorphic candidates
    /// share a fingerprint, hence a shard, so dedup is shard-invariant).
    #[test]
    fn search_is_shard_count_invariant(p in arb_problem()) {
        let base = autolb(&p, &SearchOptions { shards: 1, threads: 2, ..small_budget() }).unwrap();
        for shards in [4usize, 64] {
            let opts = SearchOptions { shards, threads: 2, ..small_budget() };
            let out = autolb(&p, &opts).unwrap();
            prop_assert_eq!(&out.verdict, &base.verdict);
            prop_assert_eq!(&out.certificate, &base.certificate);
        }
    }
}

#[test]
fn sinkless_certificate_survives_disk_round_trip() {
    let so = Problem::parse("name: so\nnode: O O O | O O I | O I I\nedge: O I").unwrap();
    let out = autolb(&so, &SearchOptions::default()).unwrap();
    assert_eq!(out.verdict, Verdict::Unbounded);
    let cert = out.certificate.unwrap();
    let dir = std::env::temp_dir().join("roundelim-auto-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("so3.cert.json");
    std::fs::write(&path, cert.to_json()).unwrap();
    let back = Certificate::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(back, cert);
    back.verify().unwrap();
}
