//! F1/F2: ASCII renderings of the paper's two figures, backed by real
//! objects from the library.
//!
//! * Figure 1 illustrates t-independence: the extension sets of a node's
//!   radius-(t−1) view along different incident edges are independent. We
//!   demonstrate it concretely on proper-colored rings: the set of valid
//!   right extensions of a window does not depend on which left extension
//!   was fixed.
//! * Figure 2 shows a locally correct superweak coloring on a Δ = 3
//!   graph; we construct one and validate it with the checker.
//!
//! ```sh
//! cargo run --example figures
//! ```

use roundelim::core::label::Label;
use roundelim::problems::weak::superweak_coloring;
use roundelim::sim::checker::check;
use roundelim::sim::graph::PortGraph;
use roundelim::sim::ring::RingClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("F1 — t-independence (Figure 1), demonstrated on colored rings\n");
    let class = RingClass::proper_coloring(3);
    let window = vec![0usize, 1, 2]; // a radius-1 view of the middle node
    println!("fixed radius-(t−1) view: {window:?}");
    let rights_unconditional = class.right_extensions(&window);
    println!("right extensions (unconditional): {rights_unconditional:?}");
    for left in class.left_extensions(&window) {
        let mut extended = vec![left];
        extended.extend_from_slice(&window);
        let rights = class.right_extensions(&extended);
        println!("after fixing left extension {left}: right extensions {rights:?}");
        assert_eq!(rights, rights_unconditional, "independence must hold");
    }
    println!("→ fixing one side never changes the other side's extension set ✓");
    println!("  (with unique IDs this FAILS — an ID seen left cannot reappear right —");
    println!("   which is exactly why Theorem 3 needs order-invariance.)\n");

    println!("F2 — a locally correct superweak 2-coloring, Δ = 3 (Figure 2)\n");
    // K4 is 3-regular; build an output: each node points at its successor
    // in a cyclic order (demanding), accepts from its predecessor.
    let g =
        PortGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).expect("K4");
    let p = superweak_coloring(2, 3)?;
    // Labels: [1→, 1(, 1•, 2→, 2(, 2•] in interning order.
    let l = |name: &str| p.alphabet().require(name).expect("label");
    // Give nodes alternating colors and a demanding/accepting pointer pair
    // along the cycle 0→1→2→3→0 (each node: 2 demanding? one demanding,
    // one accepting, one dot — 1 > … wait: need #demanding > #accepting:
    // use two demanding + one accepting is invalid (2 > 1 ✓ but check the
    // receiving side); simplest valid: colors alternate so most edges are
    // bichromatic.
    let colors = [1usize, 2, 1, 2];
    let mut outputs: Vec<Vec<Label>> = Vec::new();
    for (v, &c) in colors.iter().enumerate() {
        let succ = (v + 1) % 4; // demanding pointer target (different color)
        let mut row = Vec::new();
        for t in g.ports(v) {
            let name = if t.node_ix() == succ { format!("{c}→") } else { format!("{c}•") };
            row.push(l(&name));
        }
        outputs.push(row);
    }
    let violations = check(&p, &g, &outputs);
    println!("     1•———2•        colors: node0=1 node1=2 node2=1 node3=2");
    println!("    ╱ ╲  ╱ ╲        demanding pointers: 0→1→2→3→0 (always to the");
    println!("   0→——╳——→2        other color, so every → is satisfied)");
    println!("    ╲ ╱  ╲ ╱ ");
    println!("     3———┘   ");
    println!("checker violations: {}", violations.len());
    for v in &violations {
        println!("  - {v}");
    }
    assert!(violations.is_empty(), "the Figure 2 output must validate");
    println!("→ locally correct superweak 2-coloring validated ✓");
    Ok(())
}
