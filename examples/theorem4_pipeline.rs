//! E7 (continued): the Theorem 4 pipeline as a single call producing a
//! self-describing, machine-checked certificate.
//!
//! ```sh
//! cargo run --example theorem4_pipeline
//! ```

use roundelim::superweak::pipeline::theorem4;
use roundelim::superweak::tower::Tower;

fn main() {
    println!("E7 — Theorem 4 pipeline certificates\n");
    for h in [8u32, 14, 24, 60] {
        let delta = Tower::tower_of_twos(h);
        match theorem4(&delta) {
            Ok(cert) => {
                println!("{cert}");
                assert!(cert.ruled_out_rounds as i64 + 1 >= cert.paper_bound);
            }
            Err(e) => println!("Δ = 2↑↑{h}: {e}\n"),
        }
    }
    // And the failure mode for small degrees.
    match theorem4(&Tower::from_u128(1 << 16)) {
        Err(e) => println!("Δ = 2^16: {e} (as expected — the paper needs Δ ≥ 2^17)"),
        Ok(_) => unreachable!("2^16 is below the first Lemma 4 threshold"),
    }
}
