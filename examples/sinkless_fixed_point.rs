//! E1 (§4.4): the sinkless-coloring / sinkless-orientation fixed point,
//! regenerated for a sweep of Δ.
//!
//! Expected output shape (matching the paper):
//! * Π'_{1/2}(sinkless coloring) ≅ sinkless orientation for every Δ;
//! * Π'₁(sinkless coloring) ≅ sinkless coloring (period ≤ 2 fixed point);
//! * the iterated driver therefore reports a fixed point, never a 0-round
//!   problem.
//!
//! ```sh
//! cargo run --example sinkless_fixed_point
//! ```

use roundelim::core::iso::are_isomorphic;
use roundelim::core::sequence::{iterate, StopReason};
use roundelim::core::speedup::{full_step, half_step_edge};
use roundelim::problems::sinkless::{sinkless_coloring, sinkless_orientation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E1 — §4.4 sinkless coloring fixed point");
    println!("{:>3} | {:>12} | {:>12} | {:>18}", "Δ", "Π'_1/2 ≅ SO", "Π'₁ ≅ SC", "driver verdict");
    println!("{}", "-".repeat(58));
    for delta in 3..=8 {
        let sc = sinkless_coloring(delta)?;
        let so = sinkless_orientation(delta)?;
        let half = half_step_edge(&sc)?.problem;
        let full = full_step(&sc)?.problem().clone();
        let half_is_so = are_isomorphic(&half, &so);
        let full_is_sc = are_isomorphic(&full, &sc);
        let verdict = match iterate(&sc, 6)?.stop {
            StopReason::FixedPoint { index, earlier } => format!("fixed point {earlier}→{index}"),
            StopReason::ZeroRound { index } => format!("0-round at {index} (!)"),
            StopReason::LimitReached => "limit".into(),
        };
        println!("{delta:>3} | {half_is_so:>12} | {full_is_sc:>12} | {verdict:>18}");
        assert!(half_is_so && full_is_sc, "paper structure must hold");
    }
    println!("\nPaper: both isomorphisms hold for all Δ ≥ 3 — reproduced ✓");
    Ok(())
}
