//! E7 (Theorem 4): the Ω(log* Δ) lower bound for weak 2-coloring on
//! odd-degree graphs, regenerated as a Δ-sweep table.
//!
//! For each Δ the chain k₀ = 2, k_{i+1} = F⁵(k_i) is advanced while the
//! Lemma 4 degree condition Δ ≥ 2^{4^k+1} holds; together with the
//! zero-round impossibility this certifies a round lower bound, whose
//! shape must match the paper's (log* Δ − 7)/5.
//!
//! ```sh
//! cargo run --example weak2_lower_bound
//! ```

use roundelim::superweak::lowerbound::{
    speedup_rounds, weak2_lower_bound, zero_round_impossibility,
};
use roundelim::superweak::tower::Tower;

fn main() {
    println!("E7 — Theorem 4: weak 2-coloring lower bound\n");
    println!(
        "{:>14} | {:>7} | {:>12} | {:>14} | {:>12}",
        "Δ", "log*Δ", "chain steps", "certified T ≥", "(log*Δ−7)/5"
    );
    println!("{}", "-".repeat(72));
    for h in [5u32, 6, 8, 12, 16, 24, 40, 60, 100] {
        let delta = Tower::tower_of_twos(h);
        let log_star = delta.log_star();
        let steps = speedup_rounds(&delta, 2, 1000).last().map(|s| s.round).unwrap_or(0);
        let bound = weak2_lower_bound(&delta).map(|(t, _)| t as i64).unwrap_or(-1);
        let paper = (log_star as i64 - 7) / 5;
        println!(
            "{:>14} | {:>7} | {:>12} | {:>14} | {:>12}",
            format!("2↑↑{h}"),
            log_star,
            steps,
            if bound < 0 { "—".into() } else { format!("{}", bound + 1) },
            paper.max(0),
        );
        // Shape check: the certified chain keeps pace with the paper bound.
        assert!(steps as i64 >= paper, "chain must match the paper's shape");
    }

    println!("\nZero-round endgame (§5.2): superweak k*-coloring impossibility");
    for (k_star, delta) in [(7u128, 17u128), (2, 17), (100, 203), (8, 17)] {
        match zero_round_impossibility(k_star, delta) {
            Some(w) => println!(
                "  Δ = {delta}, k* = {k_star}: impossible — view with {} in / {} out ports, \
                 both exceed k* ✓",
                w.in_ports, w.out_ports
            ),
            None => println!("  Δ = {delta}, k* = {k_star}: argument does not apply"),
        }
    }
    println!(
        "\nΩ(log* Δ) for odd-degree weak 2-coloring — reproduced ✓ (Naor–Stockmeyer open question)"
    );
}
