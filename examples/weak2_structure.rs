//! E3 (§4.6): the structure of the derived problems of weak 2-coloring.
//!
//! Regenerates, with the generic engine, the exact artifacts the paper
//! derives by hand:
//! * the five maximal `g_{1/2}` pairs (seven usable outputs);
//! * the trit-sequence description of Π'_{1/2};
//! * the nine-element `h₁` (for Δ large enough; fewer for tiny Δ).
//!
//! ```sh
//! cargo run --example weak2_structure
//! ```

use roundelim::core::speedup::{full_step, half_step_edge};
use roundelim::problems::weak::weak_coloring_pointer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E3 — §4.6 weak 2-coloring derived structure\n");

    for delta in [3usize, 5, 7] {
        let w = weak_coloring_pointer(2, delta)?;
        let half = half_step_edge(&w)?;

        // Usable outputs of Π'_{1/2} and the maximal edge pairs.
        println!("Δ = {delta}:");
        println!(
            "  Π'_1/2: {} usable labels (paper: 7), {} maximal edge pairs (paper: 4 usable of 5 listed)",
            half.meanings.len(),
            half.problem.edge().len()
        );
        for cfg in half.problem.edge().iter() {
            let ls = cfg.labels();
            let render = |ix: roundelim::core::label::Label| {
                let names: Vec<&str> =
                    half.meanings[ix.index()].iter().map(|b| w.alphabet().name(b)).collect();
                format!("{{{}}}", names.join(" "))
            };
            println!("    {}  —  {}", render(ls[0]), render(ls[1]));
        }

        // Full step: h₁ size (the paper's "exactly 9 elements" claim).
        let step = full_step(&w)?;
        println!(
            "  Π'₁: {} node configurations (paper: 9 for large Δ), {} labels, {} edge configs",
            step.problem().node().len(),
            step.problem().alphabet().len(),
            step.problem().edge().len()
        );
        println!();
    }

    println!(
        "Note: the engine compresses unusable labels, so the '7 usable outputs'\n\
         appear directly as the derived alphabet; the pair with the empty set that\n\
         the paper lists and then discards never materializes."
    );
    Ok(())
}
