//! Quickstart: describe a problem, apply the automatic speedup, inspect
//! the derived problems and the verdict of the iterated driver.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use roundelim::core::problem::Problem;
use roundelim::core::sequence::{iterate, StopReason};
use roundelim::core::speedup::full_step;
use roundelim::core::zero_round::{zero_round_oriented, zero_round_pn};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sinkless coloring at Δ = 3 (paper §4.4), in the text format.
    let sc = Problem::parse(
        "name: sinkless-coloring\n\
         node: 1 0 0\n\
         edge: 0 0 | 0 1",
    )?;
    println!("Input problem:\n{sc}");
    println!("Zero-round solvable (plain PN)?      {}", zero_round_pn(&sc).is_some());
    println!("Zero-round solvable (oriented)?      {}", zero_round_oriented(&sc).is_some());

    // One automatic speedup step: Π → Π'₁ (Theorems 1 + 2).
    let step = full_step(&sc)?;
    println!("\nIntermediate problem Π'_1/2 (sinkless orientation):");
    println!("{}", step.half.problem);
    println!("Derived problem Π'₁ (one round faster):");
    println!("{}", step.problem());

    // Label provenance: what each derived label means over the base labels.
    println!("Label provenance (Π'₁ label → sets of base labels):");
    for l in step.problem().alphabet().labels() {
        let meaning = step.meaning_in_base(l);
        let rendered: Vec<String> = meaning
            .iter()
            .map(|set| {
                let names: Vec<&str> = set.iter().map(|b| sc.alphabet().name(b)).collect();
                format!("{{{}}}", names.join(","))
            })
            .collect();
        println!("  {} ↦ {{{}}}", step.problem().alphabet().name(l), rendered.join(", "));
    }

    // Iterate until a fixed point or a 0-round problem.
    let seq = iterate(&sc, 8)?;
    println!("\nIterated speedup: {} step(s); verdict: {:?}", seq.steps(), seq.stop);
    match seq.stop {
        StopReason::FixedPoint { index, earlier } => println!(
            "Π_{index} ≅ Π_{earlier}: the sequence loops — no 0-round problem is ever reached,\n\
             certifying the Ω(log n) lower bound for sinkless orientation [Brandt et al. STOC'16]."
        ),
        StopReason::ZeroRound { index } => {
            println!("Complexity on high-girth t-independent classes: exactly {index} rounds.")
        }
        StopReason::LimitReached => println!("No verdict within the step limit."),
    }
    Ok(())
}
