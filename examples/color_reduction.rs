//! E2 (§4.5): doubly-exponential color reduction on rings.
//!
//! Regenerates the paper's numbers: the derived problem Π'_{1/2} of
//! 4-coloring (14 usable subsets, 7 complementary-partition edge configs),
//! the hardened problem Π₁* = k′-coloring with k′ = 2^{C(k,k/2)/2}, and
//! the resulting O(log* n) 3-coloring bound.
//!
//! ```sh
//! cargo run --example color_reduction
//! ```

use roundelim::core::speedup::half_step_edge;
use roundelim::problems::color_reduction::{families, k_prime, reduction_steps, verify_properties};
use roundelim::problems::coloring::coloring;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E2 — §4.5 color reduction on rings\n");

    // The engine's half step on 4-coloring, vs the paper's closed form.
    let c4 = coloring(4, 2)?;
    let hs = half_step_edge(&c4)?;
    println!(
        "Π'_1/2(4-coloring): {} labels (paper: 14), {} edge configs (paper: 7)",
        hs.meanings.len(),
        hs.problem.edge().len()
    );
    assert_eq!(hs.meanings.len(), 14);
    assert_eq!(hs.problem.edge().len(), 7);

    // The hardening Π₁ → Π₁* and the k → k′ table.
    println!(
        "\n{:>3} | {:>12} | {:>22} | {:>10}",
        "k", "k′ (formula)", "#families (explicit)", "≥ 2^2^(k/2)"
    );
    println!("{}", "-".repeat(60));
    for k in [4usize, 6, 8] {
        let kp = k_prime(k)?;
        let explicit = if k <= 6 { families(k)?.len().to_string() } else { "(too many)".into() };
        let lower = 1u128 << (1u32 << (k as u32 / 2));
        println!("{k:>3} | {kp:>12} | {explicit:>22} | {:>10}", kp >= lower);
        if k <= 6 {
            let checked = verify_properties(k)?;
            println!("      properties 1 & 2 verified on all {checked} families ✓");
        }
    }

    // The upper-bound consequence: O(log* n) rounds to 3 colors.
    println!("\nRounds to reduce k₀ colors to 3 (each hardened speedup step = 1 round):");
    println!("{:>12} | {:>6}", "k₀", "steps");
    for exp in [4u32, 16, 64, 100] {
        let k0 = 1u128 << exp;
        println!("{:>12} | {:>6}", format!("2^{exp}"), reduction_steps(k0, 3));
    }
    println!("\nDoubly-exponential shrinkage ⇒ O(log* n) 3-coloring of rings — reproduced ✓");
    Ok(())
}
