//! E9: the upper bounds as running distributed algorithms.
//!
//! Cole–Vishkin 3-colors oriented rings in O(log* n) rounds (the §4.5
//! upper bound) and the pointer-forest algorithm weak-2-colors graphs in
//! O(log* n) rounds (the Theorem 4 companion); both outputs are validated
//! by the problem checker, and the round counts plateau as n doubles —
//! the log* signature.
//!
//! ```sh
//! cargo run --example simulate_ring
//! ```

use rand::SeedableRng;
use roundelim::problems::coloring::coloring;
use roundelim::problems::weak::weak_coloring_pointer;
use roundelim::sim::algos::cole_vishkin::{self, ColeVishkin};
use roundelim::sim::algos::weak2::{self, WeakTwoColoring};
use roundelim::sim::checker::is_valid;
use roundelim::sim::generate::{cycle, random_regular};
use roundelim::sim::runner::{run, NodeInput};

fn ring_inputs(n: usize, seed: u64) -> Vec<NodeInput> {
    use rand::seq::SliceRandom;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut ids: Vec<u64> = (0..n as u64).collect();
    ids.shuffle(&mut rng);
    (0..n)
        .map(|v| NodeInput {
            id: Some(ids[v]),
            color: None,
            oriented_away: if v == 0 { vec![true, false] } else { vec![false, true] },
        })
        .collect()
}

fn main() {
    println!("E9 — running the upper bounds\n");
    println!("Cole–Vishkin 3-coloring of oriented rings:");
    println!("{:>9} | {:>6} | {:>6}", "n", "rounds", "valid");
    let p3 = coloring(3, 2).expect("3-coloring");
    for &n in &[16usize, 256, 4096, 65536] {
        let g = cycle(n);
        let rounds = cole_vishkin::total_rounds(n);
        let out = run(&g, &ring_inputs(n, n as u64), &ColeVishkin::for_n(n), rounds);
        println!("{n:>9} | {rounds:>6} | {:>6}", is_valid(&p3, &g, &out));
    }
    println!("(rounds plateau as n grows 4096× — the log* signature)\n");

    println!("Weak 2-coloring of odd-degree regular graphs (pointer version):");
    println!("{:>6} {:>3} | {:>6} | {:>6}", "n", "Δ", "rounds", "valid");
    let mut rng = rand::rngs::StdRng::seed_from_u64(2019);
    for &(n, d) in &[(16usize, 3usize), (64, 5), (128, 7), (256, 3)] {
        let g = random_regular(n, d, 20000, &mut rng).expect("regular graph");
        let rounds = weak2::total_rounds(n);
        let inputs: Vec<NodeInput> =
            (0..n).map(|v| NodeInput { id: Some(v as u64), ..NodeInput::default() }).collect();
        let out = run(&g, &inputs, &WeakTwoColoring::for_n(n), rounds);
        let p = weak_coloring_pointer(2, d).expect("weak coloring problem");
        println!("{n:>6} {d:>3} | {rounds:>6} | {:>6}", is_valid(&p, &g, &out));
    }
}
