//! E4–E6 (§5.1): the superweak pipeline — Lemma 1 (P∞), Lemma 2
//! (J*/N(J*) dichotomy with verified witnesses), Lemma 3 (output
//! transformation and the k′ counting bound).
//!
//! ```sh
//! cargo run --example superweak_lemmas
//! ```

use roundelim::superweak::h1::NodeOutput;
use roundelim::superweak::lemma1::{delta_requirement, find_p_infinity, multiplicity_slack};
use roundelim::superweak::lemma2::{lemma2, Lemma2Outcome, Orientation};
use roundelim::superweak::transform::{
    h1_count_log2_bound, k_prime, transform_output, TransformOutcome,
};
use roundelim::superweak::trit::{TritSeq, TritSet};

fn t(s: &str) -> TritSeq {
    TritSeq::new(s.bytes().map(|b| b - b'0').collect()).expect("valid trits")
}

fn alt_alpha(delta: usize) -> Vec<Orientation> {
    (0..delta).map(|i| if i % 2 == 0 { Orientation::Out } else { Orientation::In }).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 2usize;
    let delta = (1usize << 17) + 9;
    println!("E4 — Lemma 1 at k = {k}, Δ = {delta}");
    println!("  degree requirement 2^(4^k+1) = {}", delta_requirement(k).unwrap());
    println!("  multiplicity slack 2^(4^k)   = {}", multiplicity_slack(k));

    // A structured Π'₁ output: P∞ dominant plus a few exotic ports.
    let p_inf = TritSet::new([t("11"), t("22")]);
    let exotic = TritSet::new([t("21")]);
    let mut per_port = vec![p_inf.clone(); delta];
    for p in [0usize, 2, 4] {
        per_port[p] = exotic.clone();
    }
    let q = NodeOutput::new(per_port);
    let pi = find_p_infinity(&q)?;
    println!(
        "  P∞ found: set {} with multiplicity {} ≥ Δ − 2^16 ✓ (contains 11…1: {})",
        q.distinct_sets()[pi as usize],
        q.multiplicities()[pi as usize],
        q.distinct_sets()[pi as usize].contains_all_ones()
    );

    println!("\nE5 — Lemma 2 dichotomy");
    let alpha = alt_alpha(delta);
    match lemma2(&q, &alpha)? {
        Lemma2Outcome::Pointers(ps) => {
            println!(
                "  J* = {:?} (demanding), N(J*) = {:?} (accepting): |J*| = {} > |N(J*)| = {} ✓",
                ps.j_star,
                ps.n_j_star,
                ps.j_star.len(),
                ps.n_j_star.len()
            );
            assert!(ps.verify(&q, &alpha, pi));
            println!("  witness verified against the Lemma 2 guarantees ✓");
        }
        Lemma2Outcome::NotInH1(v) => {
            println!("  explicit Property A violation found (Q ∉ h₁): verified = {}", v.verify(&q));
        }
    }

    // The other branch: a balanced output that is certifiably not in h₁.
    let rich = TritSet::new([t("11"), t("22"), t("00"), t("20"), t("02")]);
    let mut per_port = vec![rich; delta];
    per_port[5] = TritSet::new([t("20")]);
    let q_bad = NodeOutput::new(per_port);
    match lemma2(&q_bad, &alpha)? {
        Lemma2Outcome::NotInH1(v) => {
            println!(
                "  balanced output: certified Q ∉ h₁ (violation verifies: {}) ✓",
                v.verify(&q_bad)
            );
        }
        Lemma2Outcome::Pointers(_) => println!("  unexpected pointers"),
    }

    println!("\nE6 — Lemma 3 transformation and counting bound");
    match transform_output(&q, &alpha)? {
        TransformOutcome::Output(out) => {
            println!(
                "  superweak output: color of {} bytes, {} demanding > {} accepting pointers ✓",
                out.color.bytes().len(),
                out.demanding_count(),
                out.accepting_count()
            );
        }
        TransformOutcome::NotInH1(_) => println!("  unexpected violation"),
    }
    for kk in [2usize, 3] {
        let log_h1 = h1_count_log2_bound(kk).unwrap();
        let kp = k_prime(kk).unwrap();
        println!(
            "  k = {kk}: log₂|H₁(Δ)| ≤ {log_h1} ≤ log₂ k′ = {} (k′ = 2^2^5^k) ✓",
            kp.log2().unwrap()
        );
        assert!(log_h1 <= kp.log2().unwrap());
    }
    Ok(())
}
