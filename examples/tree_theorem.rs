//! E8b: Theorem 1 executable on Δ-regular **trees** (t = 1) — beyond the
//! ring case, on the graph class the paper's lower bounds actually live
//! on (high girth, here infinite).
//!
//! A 1-round algorithm reducing a proper 5-coloring to a 4-coloring on
//! 3-regular trees is sped up to a verified 0-round algorithm for
//! Π'₁(4-coloring).
//!
//! ```sh
//! cargo run --example tree_theorem
//! ```

use roundelim::core::label::Label;
use roundelim::core::speedup::full_step;
use roundelim::problems::coloring::coloring;
use roundelim::sim::tree::{
    check_tree_algorithm, derive_half_tree, derive_one_tree, TreeAlgorithm, TreeClass,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E8b — executable Theorem 1 on 3-regular trees (t = 1)\n");
    let class = TreeClass::new(5, 3)?;
    let a = TreeAlgorithm::from_fn(&class, |own, _port, nbrs| {
        let color = if own == 4 { (0..4).find(|c| !nbrs.contains(c)).expect("room") } else { own };
        Label::from_index(color)
    });
    let p4 = coloring(4, 3)?;
    check_tree_algorithm(&a, &p4, &class)?;
    println!("A (1 round) solves 4-coloring on proper-5-colored 3-regular trees ✓");

    let step = full_step(&p4)?;
    println!(
        "Π'₁(4-coloring, Δ=3): {} labels, |node| = {}, |edge| = {}",
        step.problem().alphabet().len(),
        step.problem().node().len(),
        step.problem().edge().len()
    );
    let eh = derive_half_tree(&a, &p4, &step, &class)?;
    let a1 = derive_one_tree(&eh, &step, &class)?;
    println!("Derived A₁ (0 rounds) solves Π'₁ ✓  — node + adversarial-wiring edge checks passed");
    for (color, out) in a1.outputs.iter().enumerate() {
        let names: Vec<&str> = out.iter().map(|&l| step.problem().alphabet().name(l)).collect();
        println!("  own color {color} ↦ per-port Π'₁ labels {names:?}");
    }
    println!("\nTheorem 1 (1) ⇒ (2) verified on trees — the high-girth regime of the paper ✓");
    Ok(())
}
