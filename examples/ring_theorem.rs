//! E8: Theorem 1 made executable on rings — both directions.
//!
//! Takes the 1-round color-reduction algorithm for 3-coloring on
//! 4-colored rings, derives the 0-round algorithm for Π'₁ through the
//! proof's A → A_{1/2} → A₁ pipeline, verifies it, then reconstructs a
//! 1-round algorithm for 3-coloring from it (A* → A*₋₁/₂ → A*₋₁) and
//! verifies that too. Also iterates the forward direction through a
//! 2-round algorithm.
//!
//! ```sh
//! cargo run --example ring_theorem
//! ```

use roundelim::core::label::Label;
use roundelim::core::speedup::full_step;
use roundelim::problems::coloring::coloring;
use roundelim::sim::ring::{
    check_node_algorithm, slowdown, speedup_algorithm, RingClass, WindowAlgorithm,
};

/// 1-round reduction `c`-coloring → (`c`−1)-coloring on rings.
fn reduction(c: usize, class: &RingClass) -> WindowAlgorithm {
    WindowAlgorithm::from_fn(1, class, |w| {
        let (x, y, z) = (w[0], w[1], w[2]);
        let color = if y == c - 1 {
            (0..c - 1).find(|&k| k != x && k != z).expect("room below c-1")
        } else {
            y
        };
        (Label::from_index(color), Label::from_index(color))
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("E8 — executable Theorem 1 on rings\n");

    // Forward: A solves 3-coloring in 1 round on 4-colored rings.
    let class = RingClass::proper_coloring(4);
    let p3 = coloring(3, 2)?;
    let a = reduction(4, &class);
    check_node_algorithm(&a, &p3, &class)?;
    println!("A (1 round) solves 3-coloring on proper-4-colored rings ✓");

    let step = full_step(&p3)?;
    println!(
        "Π'₁(3-coloring): {} labels, |node| = {}, |edge| = {}",
        step.problem().alphabet().len(),
        step.problem().node().len(),
        step.problem().edge().len()
    );
    let a1 = speedup_algorithm(&a, &p3, &step, &class)?;
    check_node_algorithm(&a1, step.problem(), &class)?;
    println!("Derived A₁ ({} rounds) solves Π'₁ ✓  [(1) ⇒ (2) of Theorem 1]", a1.t);

    // Backward: reconstruct a 1-round algorithm for 3-coloring from A₁.
    let back = slowdown(&a1, &p3, &step, &class)?;
    check_node_algorithm(&back, &p3, &class)?;
    println!("Reconstructed A*₋₁ ({} round) solves 3-coloring ✓  [(2) ⇒ (1)]", back.t);

    // Two-round chain: 5 → 4 → 3 coloring in 2 rounds, sped up twice.
    let class5 = RingClass::proper_coloring(5);
    let two_round = WindowAlgorithm::from_fn(2, &class5, |w| {
        // Simulate two greedy reduction rounds on the 5-window.
        let reduce = |x: usize, y: usize, z: usize, c: usize| {
            if y == c - 1 {
                (0..c - 1).find(|&k| k != x && k != z).expect("room")
            } else {
                y
            }
        };
        let a1 = reduce(w[0], w[1], w[2], 5);
        let b1 = reduce(w[1], w[2], w[3], 5);
        let c1 = reduce(w[2], w[3], w[4], 5);
        let out = reduce(a1, b1, c1, 4);
        (Label::from_index(out), Label::from_index(out))
    });
    check_node_algorithm(&two_round, &p3, &class5)?;
    println!("\nA (2 rounds) solves 3-coloring on proper-5-colored rings ✓");
    let step1 = full_step(&p3)?;
    let a1 = speedup_algorithm(&two_round, &p3, &step1, &class5)?;
    check_node_algorithm(&a1, step1.problem(), &class5)?;
    println!("First speedup: A₁ ({} round) solves Π'₁ ✓", a1.t);
    // And the reconstructed 2-round algorithm still works.
    let back2 = slowdown(&a1, &p3, &step1, &class5)?;
    check_node_algorithm(&back2, &p3, &class5)?;
    println!("Reconstructed A*₋₁ ({} rounds) solves 3-coloring ✓", back2.t);

    // §2.1's warning, reproduced: a second *unaided* speedup explodes.
    match full_step(step1.problem()) {
        Err(e) => println!(
            "\nSecond unaided speedup of Π'₁: {e}\n\
             — exactly the §2.1 description-complexity explosion; the paper's\n\
             remedy is relaxation (for lower bounds) or hardening (§4.5: Π₁* is\n\
             just a k′-coloring), not iterating the raw transform."
        ),
        Ok(step2) => {
            println!("\nSecond speedup succeeded with {} labels", step2.problem().alphabet().len())
        }
    }
    Ok(())
}
